// Equivalence matrix for the fixed-dimension kernel layer.
//
// The kernels (linalg/kernels.hpp) promise BIT-IDENTICAL results to the
// generic dynamic-dimension transcription for every primitive, at every
// specialized dimension d = 1..4 — the determinism goldens hash every
// mantissa bit downstream of them. These tests enforce the promise
// exhaustively: random SPD inputs plus the adversarial near-singular
// shapes the protocol actually produces (zero covariance / point
// masses, tiny-jitter regularized factors, strongly correlated
// covariances), each compared against a straight re-implementation of
// the pre-kernel arithmetic. The lanewise AVX2 batch kernel (when the
// binary and CPU have it) is held to the same standard in
// tests/stats/score_batch_test.cpp.
#include <array>
#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include <ddc/linalg/cholesky.hpp>
#include <ddc/linalg/kernels.hpp>
#include <ddc/linalg/matrix.hpp>
#include <ddc/linalg/moments.hpp>
#include <ddc/linalg/simd.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/stats/rng.hpp>

namespace {

using ddc::linalg::Matrix;
using ddc::linalg::Vector;
namespace kernels = ddc::linalg::kernels;

// ---------------------------------------------------------------------------
// Reference implementations: line-for-line copies of the pre-kernel
// generic loops, kept here as the immutable comparison oracle.
// ---------------------------------------------------------------------------

bool ref_cholesky(const Matrix& a, Matrix& l) {
  const std::size_t n = a.rows();
  l = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / ljj;
    }
  }
  return true;
}

Vector ref_solve_lower(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
    y[i] = acc / l(i, i);
  }
  return y;
}

Vector ref_solve(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  Vector y = ref_solve_lower(l, b);
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l(k, ii) * x[k];
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

Matrix ref_inverse(const Matrix& l) {
  const std::size_t n = l.rows();
  Matrix inv(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    Vector e(n);
    e[c] = 1.0;
    const Vector col = ref_solve(l, e);
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

double ref_log_det(const Matrix& l) {
  double acc = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) acc += std::log(l(i, i));
  return 2.0 * acc;
}

double ref_trace_product(const Matrix& a, const Matrix& b) {
  double total = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      acc += aik * b(k, i);
    }
    total += acc;
  }
  return total;
}

double ref_dot(const Vector& a, const Vector& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) acc += a[i] * b[i];
  return acc;
}

// ---------------------------------------------------------------------------
// Input generators: random SPD plus the adversarial near-singular set.
// ---------------------------------------------------------------------------

Matrix random_spd(std::size_t d, ddc::stats::Rng& rng, double ridge) {
  Matrix b(d, d);
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) b(r, c) = rng.normal();
  }
  Matrix a = b * ddc::linalg::transpose(b);
  for (std::size_t i = 0; i < d; ++i) a(i, i) += ridge;
  return ddc::linalg::symmetrize(a);
}

/// The shapes the protocol actually feeds these kernels: healthy SPD,
/// point-mass covariance regularized by the smallest jitter, barely
/// ridged random products, and strongly correlated (near-rank-1)
/// covariances.
std::vector<Matrix> adversarial_spd(std::size_t d, ddc::stats::Rng& rng) {
  std::vector<Matrix> out;
  out.push_back(random_spd(d, rng, 0.5));
  // Zero covariance + the regularizer's first jitter step (1e-9 I) —
  // what a point-mass summary factorizes as.
  Matrix jittered(d, d);
  for (std::size_t i = 0; i < d; ++i) jittered(i, i) = 1e-9;
  out.push_back(jittered);
  // Barely positive definite.
  out.push_back(random_spd(d, rng, 1e-9));
  // Near-rank-1: u uᵀ + tiny ridge (condition number ~1e12).
  Matrix u(d, 1);
  for (std::size_t r = 0; r < d; ++r) u(r, 0) = rng.normal();
  Matrix nearly = u * ddc::linalg::transpose(u);
  for (std::size_t i = 0; i < d; ++i) nearly(i, i) += 1e-12;
  out.push_back(ddc::linalg::symmetrize(nearly));
  // Wildly mixed scales on the diagonal.
  Matrix scales(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    scales(i, i) = std::pow(10.0, static_cast<double>(i) * 4.0 - 6.0);
  }
  out.push_back(scales);
  return out;
}

Vector random_vector(std::size_t d, ddc::stats::Rng& rng) {
  Vector v(d);
  for (std::size_t i = 0; i < d; ++i) v[i] = rng.normal();
  return v;
}

// ---------------------------------------------------------------------------
// The matrix: every kernel, d = 1..4 (the specialized dims) and 5..8
// (the dynamic instantiation), random + adversarial inputs, EXPECT_EQ.
// ---------------------------------------------------------------------------

class KernelEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelEquivalence, CholeskyFactorMatchesReference) {
  const std::size_t d = GetParam();
  ddc::stats::Rng rng(100 + d);
  for (int rep = 0; rep < 50; ++rep) {
    for (const Matrix& a : adversarial_spd(d, rng)) {
      Matrix ref_l;
      const bool ref_ok = ref_cholesky(a, ref_l);
      Matrix l(d, d);
      const bool ok = kernels::dispatch_dim(d, [&](auto fd) {
        return kernels::cholesky_factor<fd()>(a.data().data(),
                                              l.data().data(), d);
      });
      ASSERT_EQ(ok, ref_ok);
      if (!ok) continue;
      EXPECT_EQ(l, ref_l);
    }
  }
}

TEST_P(KernelEquivalence, SolvePathsMatchReference) {
  const std::size_t d = GetParam();
  ddc::stats::Rng rng(200 + d);
  for (int rep = 0; rep < 50; ++rep) {
    for (const Matrix& a : adversarial_spd(d, rng)) {
      Matrix l(d, d);
      if (!kernels::dispatch_dim(d, [&](auto fd) {
            return kernels::cholesky_factor<fd()>(a.data().data(),
                                                  l.data().data(), d);
          })) {
        continue;
      }
      const Vector b = random_vector(d, rng);
      // solve_lower
      Vector y(d);
      kernels::dispatch_dim(d, [&](auto fd) {
        kernels::solve_lower<fd()>(l.data().data(), b.data().data(),
                                   y.data().data(), d);
      });
      const Vector ref_y = ref_solve_lower(l, b);
      EXPECT_EQ(y, ref_y);
      // full solve (forward + transposed-back substitution)
      Vector x(d);
      kernels::dispatch_dim(d, [&](auto fd) {
        kernels::solve_upper_transposed<fd()>(l.data().data(),
                                              ref_y.data().data(),
                                              x.data().data(), d);
      });
      EXPECT_EQ(x, ref_solve(l, b));
      // mahalanobis = dot(y, y) after the forward solve
      std::vector<double> scratch(d);
      const double maha = kernels::dispatch_dim(d, [&](auto fd) {
        return kernels::mahalanobis_squared<fd()>(
            l.data().data(), b.data().data(), scratch.data(), d);
      });
      EXPECT_EQ(maha, ref_dot(ref_y, ref_y));
      // inverse from factor == column-by-column solve of the identity
      Matrix inv(d, d);
      std::vector<double> scratch2(2 * d);
      kernels::dispatch_dim(d, [&](auto fd) {
        kernels::inverse_from_factor<fd()>(l.data().data(), inv.data().data(),
                                           scratch2.data(), d);
      });
      EXPECT_EQ(inv, ref_inverse(l));
      // log det
      const double ld = kernels::dispatch_dim(d, [&](auto fd) {
        return kernels::log_det_from_factor<fd()>(l.data().data(), d);
      });
      EXPECT_EQ(ld, ref_log_det(l));
    }
  }
}

TEST_P(KernelEquivalence, TraceProductDotAndMomentsMatchReference) {
  const std::size_t d = GetParam();
  ddc::stats::Rng rng(300 + d);
  for (int rep = 0; rep < 50; ++rep) {
    const Matrix a = random_spd(d, rng, 1e-6);
    const Matrix b = random_spd(d, rng, 0.5);
    EXPECT_EQ(ddc::linalg::trace_product(a, b), ref_trace_product(a, b));
    // Zero-skip coverage: a diagonal (mostly-zero) left factor.
    Matrix diag(d, d);
    for (std::size_t i = 0; i < d; ++i) diag(i, i) = rng.normal();
    EXPECT_EQ(ddc::linalg::trace_product(diag, b),
              ref_trace_product(diag, b));

    const Vector u = random_vector(d, rng);
    const Vector v = random_vector(d, rng);
    EXPECT_EQ(ddc::linalg::dot(u, v), ref_dot(u, v));

    // add_scaled / add_scaled_spread / add_scaled_outer against their
    // elementwise reference loops.
    const double scale = rng.uniform(0.1, 3.0);
    Vector acc = random_vector(d, rng);
    Vector ref_acc = acc;
    ddc::linalg::add_scaled(acc, scale, u);
    for (std::size_t i = 0; i < d; ++i) ref_acc[i] += scale * u[i];
    EXPECT_EQ(acc, ref_acc);

    Matrix macc = random_spd(d, rng, 0.5);
    Matrix ref_macc = macc;
    ddc::linalg::add_scaled_spread(macc, scale, b, u);
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t c = 0; c < d; ++c) {
        ref_macc(r, c) += scale * (b(r, c) + u[r] * u[c]);
      }
    }
    EXPECT_EQ(macc, ref_macc);

    Matrix oacc = random_spd(d, rng, 0.5);
    Matrix ref_oacc = oacc;
    kernels::dispatch_dim(d, [&](auto fd) {
      kernels::add_scaled_outer<fd()>(oacc.data().data(), scale,
                                      u.data().data(), d);
    });
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t c = 0; c < d; ++c) {
        ref_oacc(r, c) += scale * (u[r] * u[c]);
      }
    }
    EXPECT_EQ(oacc, ref_oacc);
  }
}

TEST_P(KernelEquivalence, CholeskyClassMatchesReferenceEndToEnd) {
  // The public Cholesky class (now kernel-backed) against the reference
  // pipeline on the adversarial set, including the regularized path.
  const std::size_t d = GetParam();
  ddc::stats::Rng rng(400 + d);
  for (int rep = 0; rep < 20; ++rep) {
    for (const Matrix& a : adversarial_spd(d, rng)) {
      Matrix ref_l;
      if (!ref_cholesky(a, ref_l)) continue;
      const ddc::linalg::Cholesky f(a);
      EXPECT_EQ(f.lower(), ref_l);
      EXPECT_EQ(f.inverse(), ref_inverse(ref_l));
      EXPECT_EQ(f.log_det(), ref_log_det(ref_l));
      const Vector b = random_vector(d, rng);
      EXPECT_EQ(f.solve(b), ref_solve(ref_l, b));
      const Vector y = ref_solve_lower(ref_l, b);
      EXPECT_EQ(f.mahalanobis_squared(b), ref_dot(y, y));
    }
  }
}

// d = 1..4 exercise the unrolled specializations; 5..8 the dynamic
// instantiation through the same dispatcher.
TEST_P(KernelEquivalence, DistanceBatchTiersMatchDistance2) {
  // The batched centroid-distance kernel backs the greedy partition's
  // distance-matrix fill, which feeds golden digests: every tier must
  // be bit-identical to linalg::distance2 per output. Counts straddle
  // the 4-wide SIMD width so both the vector body and the scalar
  // remainder are exercised.
  namespace simd = ddc::linalg::simd;
  const std::size_t d = GetParam();
  ddc::stats::Rng rng(500 + d);
  for (const std::size_t count : {std::size_t{1}, std::size_t{3},
                                  std::size_t{4}, std::size_t{5},
                                  std::size_t{11}}) {
    const Vector a = random_vector(d, rng);
    std::vector<double> bs(count * d);
    for (auto& v : bs) v = rng.normal();

    std::vector<double> scalar_out(count);
    simd::scalar_distance_kernel()(a.data().data(), bs.data(), count,
                                   scalar_out.data(), d);
    for (std::size_t j = 0; j < count; ++j) {
      const Vector b(std::vector<double>(bs.begin() + static_cast<std::ptrdiff_t>(j * d),
                                         bs.begin() + static_cast<std::ptrdiff_t>((j + 1) * d)));
      EXPECT_EQ(scalar_out[j], ddc::linalg::distance2(a, b));
    }

    const simd::DistanceBatchFn lanewise = simd::avx2_lanewise_distance_kernel();
    if (lanewise != nullptr && simd::cpu_supports_avx2()) {
      std::vector<double> avx_out(count);
      lanewise(a.data().data(), bs.data(), count, avx_out.data(), d);
      EXPECT_EQ(avx_out, scalar_out);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDims, KernelEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(KernelDispatch, BatchDistanceKernelFollowsConfiguredTier) {
  // batch_distance_kernel() is what the partition hot path actually
  // calls — pin its dispatch semantics: the scalar mode returns the
  // scalar reference, and the avx2/auto tiers return the lanewise
  // kernel exactly when the binary and CPU both have it.
  namespace simd = ddc::linalg::simd;
  struct ModeGuard {
    ~ModeGuard() { simd::configure(simd::Mode::auto_detect); }
  } guard;
  simd::configure(simd::Mode::scalar);
  EXPECT_EQ(simd::batch_distance_kernel(), simd::scalar_distance_kernel());
  simd::configure(simd::Mode::auto_detect);
  const bool avx2 = simd::compiled_with_avx2() && simd::cpu_supports_avx2();
  EXPECT_EQ(simd::batch_distance_kernel(),
            avx2 ? simd::avx2_lanewise_distance_kernel()
                 : simd::scalar_distance_kernel());
  EXPECT_NE(simd::batch_distance_kernel(), nullptr);
}

TEST(KernelDispatch, SelectsSpecializationForSmallDims) {
  for (std::size_t d = 1; d <= 8; ++d) {
    const std::size_t selected =
        kernels::dispatch_dim(d, [](auto fd) { return std::size_t{fd()}; });
    if (d <= 4) {
      EXPECT_EQ(selected, d);
    } else {
      EXPECT_EQ(selected, kernels::kDynamic);
    }
  }
}

}  // namespace
