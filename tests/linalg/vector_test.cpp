#include <ddc/linalg/vector.hpp>

#include <cmath>
#include <numbers>
#include <sstream>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>

namespace ddc::linalg {
namespace {

TEST(Vector, DefaultConstructedIsEmpty) {
  const Vector v;
  EXPECT_EQ(v.dim(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(Vector, ZeroConstructorFillsWithZeros) {
  const Vector v(3);
  EXPECT_EQ(v.dim(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(Vector, FillConstructor) {
  const Vector v(4, 2.5);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], 2.5);
}

TEST(Vector, InitializerList) {
  const Vector v{1.0, -2.0, 3.0};
  EXPECT_EQ(v.dim(), 3u);
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[1], -2.0);
  EXPECT_EQ(v[2], 3.0);
}

TEST(Vector, OutOfRangeAccessThrows) {
  const Vector v{1.0};
  EXPECT_THROW((void)v[1], ContractViolation);
}

TEST(Vector, AdditionAndSubtraction) {
  const Vector a{1.0, 2.0};
  const Vector b{3.0, 5.0};
  EXPECT_EQ(a + b, (Vector{4.0, 7.0}));
  EXPECT_EQ(b - a, (Vector{2.0, 3.0}));
}

TEST(Vector, DimensionMismatchThrows) {
  const Vector a{1.0, 2.0};
  const Vector b{1.0};
  EXPECT_THROW((void)(a + b), ContractViolation);
  EXPECT_THROW((void)dot(a, b), ContractViolation);
  EXPECT_THROW((void)distance2(a, b), ContractViolation);
}

TEST(Vector, ScalarOperations) {
  const Vector v{2.0, -4.0};
  EXPECT_EQ(v * 0.5, (Vector{1.0, -2.0}));
  EXPECT_EQ(0.5 * v, (Vector{1.0, -2.0}));
  EXPECT_EQ(v / 2.0, (Vector{1.0, -2.0}));
  EXPECT_EQ(-v, (Vector{-2.0, 4.0}));
}

TEST(Vector, DivisionByZeroThrows) {
  Vector v{1.0};
  EXPECT_THROW(v /= 0.0, ContractViolation);
}

TEST(Vector, DotProduct) {
  EXPECT_DOUBLE_EQ(dot(Vector{1.0, 2.0, 3.0}, Vector{4.0, -5.0, 6.0}),
                   4.0 - 10.0 + 18.0);
}

TEST(Vector, Norms) {
  const Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm1(v), 7.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
}

TEST(Vector, Distance) {
  EXPECT_DOUBLE_EQ(distance2(Vector{0.0, 0.0}, Vector{3.0, 4.0}), 5.0);
}

TEST(Vector, AngleBetweenOrthogonalVectors) {
  EXPECT_NEAR(angle_between(Vector{1.0, 0.0}, Vector{0.0, 1.0}),
              std::numbers::pi / 2.0, 1e-12);
}

TEST(Vector, AngleBetweenParallelVectorsIsZero) {
  EXPECT_NEAR(angle_between(Vector{1.0, 2.0}, Vector{2.0, 4.0}), 0.0, 1e-7);
}

TEST(Vector, AngleBetweenOppositeVectorsIsPi) {
  EXPECT_NEAR(angle_between(Vector{1.0, 0.0}, Vector{-1.0, 0.0}),
              std::numbers::pi, 1e-12);
}

TEST(Vector, AngleOfZeroVectorThrows) {
  EXPECT_THROW((void)angle_between(Vector{0.0, 0.0}, Vector{1.0, 0.0}),
               NumericalError);
}

TEST(Vector, Normalized) {
  const Vector n = normalized(Vector{3.0, 4.0});
  EXPECT_NEAR(norm2(n), 1.0, 1e-15);
  EXPECT_NEAR(n[0], 0.6, 1e-15);
  EXPECT_THROW((void)normalized(Vector{0.0}), NumericalError);
}

TEST(Vector, UnitVector) {
  const Vector e = unit_vector(4, 2);
  EXPECT_EQ(e, (Vector{0.0, 0.0, 1.0, 0.0}));
  EXPECT_THROW((void)unit_vector(2, 2), ContractViolation);
}

TEST(Vector, StreamOutput) {
  std::ostringstream os;
  os << Vector{1.0, 2.0};
  EXPECT_EQ(os.str(), "[1, 2]");
}

}  // namespace
}  // namespace ddc::linalg
