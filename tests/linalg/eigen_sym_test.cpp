#include <ddc/linalg/eigen_sym.hpp>

#include <cmath>

#include <gtest/gtest.h>

#include <ddc/linalg/cholesky.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::linalg {
namespace {

Matrix random_symmetric(std::size_t n, stats::Rng& rng) {
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r; c < n; ++c) {
      a(r, c) = rng.normal();
      a(c, r) = a(r, c);
    }
  }
  return a;
}

TEST(EigenSym, DiagonalMatrixEigenvaluesSorted) {
  const SymEigen e = eigen_sym(Matrix::diagonal(Vector{1.0, 5.0, 3.0}));
  EXPECT_NEAR(e.values[0], 5.0, 1e-12);
  EXPECT_NEAR(e.values[1], 3.0, 1e-12);
  EXPECT_NEAR(e.values[2], 1.0, 1e-12);
}

TEST(EigenSym, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const SymEigen e = eigen_sym(Matrix{{2.0, 1.0}, {1.0, 2.0}});
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/√2 up to sign.
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), std::sqrt(0.5), 1e-10);
  EXPECT_NEAR(e.vectors(0, 0), e.vectors(1, 0), 1e-10);
}

TEST(EigenSym, ReconstructsRandomSymmetricMatrices) {
  stats::Rng rng(21);
  for (std::size_t n : {2u, 3u, 5u, 7u}) {
    const Matrix a = random_symmetric(n, rng);
    const SymEigen e = eigen_sym(a);
    Matrix rebuilt(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      const Vector vi = e.vectors.col(i);
      rebuilt += e.values[i] * outer(vi, vi);
    }
    EXPECT_LT(max_abs(rebuilt - a), 1e-9) << "n=" << n;
  }
}

TEST(EigenSym, EigenvectorsAreOrthonormal) {
  stats::Rng rng(22);
  const Matrix a = random_symmetric(4, rng);
  const SymEigen e = eigen_sym(a);
  const Matrix vtv = transpose(e.vectors) * e.vectors;
  EXPECT_LT(max_abs(vtv - Matrix::identity(4)), 1e-10);
}

TEST(EigenSym, TraceEqualsEigenvalueSum) {
  stats::Rng rng(23);
  const Matrix a = random_symmetric(5, rng);
  const SymEigen e = eigen_sym(a);
  double sum = 0.0;
  for (std::size_t i = 0; i < 5; ++i) sum += e.values[i];
  EXPECT_NEAR(sum, trace(a), 1e-10);
}

TEST(EigenSym, RejectsAsymmetricInput) {
  EXPECT_THROW((void)eigen_sym(Matrix{{1.0, 2.0}, {0.0, 1.0}}),
               ContractViolation);
}

TEST(ClipEigenvalues, RepairsIndefiniteMatrix) {
  // Indefinite: eigenvalues 1 and −1.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix repaired = clip_eigenvalues(a, 1e-6);
  // Must now be PD: Cholesky succeeds.
  EXPECT_NO_THROW(Cholesky{repaired});
  const SymEigen e = eigen_sym(repaired);
  EXPECT_NEAR(e.values[0], 1.0, 1e-9);
  EXPECT_NEAR(e.values[1], 1e-6, 1e-9);
}

TEST(ClipEigenvalues, LeavesPdMatrixUntouched) {
  const Matrix a{{2.0, 0.5}, {0.5, 1.0}};
  EXPECT_LT(max_abs(clip_eigenvalues(a, 1e-9) - a), 1e-10);
}

}  // namespace
}  // namespace ddc::linalg
