#include <ddc/summaries/gaussian_summary.hpp>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/core/weight.hpp>

namespace ddc::summaries {
namespace {

using core::Classification;
using core::Collection;
using core::Weight;
using core::WeightedSummary;
using linalg::Matrix;
using linalg::Vector;
using stats::Gaussian;

TEST(GaussianPolicy, ValToSummaryIsPointMass) {
  const Gaussian g = GaussianPolicy::val_to_summary(Vector{1.0, 2.0});
  EXPECT_EQ(g.mean(), (Vector{1.0, 2.0}));
  EXPECT_EQ(linalg::max_abs(g.cov()), 0.0);
}

TEST(GaussianPolicy, MergeSetMatchesMomentMatch) {
  const Gaussian a(Vector{0.0}, Matrix{{1.0}});
  const Gaussian b(Vector{4.0}, Matrix{{2.0}});
  const std::vector<WeightedSummary<Gaussian>> parts = {{a, 1.0}, {b, 3.0}};
  const Gaussian merged = GaussianPolicy::merge_set(parts);
  EXPECT_NEAR(merged.mean()[0], 3.0, 1e-12);
  // Law of total covariance: 0.25·1 + 0.75·2 + 0.25·9 + 0.75·1 = 4.75.
  EXPECT_NEAR(merged.cov()(0, 0), 4.75, 1e-12);
}

TEST(GaussianPolicy, DistanceComparesOnlyMeans) {
  const Gaussian a(Vector{0.0, 0.0}, Matrix::identity(2));
  const Gaussian b(Vector{3.0, 4.0}, Matrix::identity(2) * 100.0);
  EXPECT_DOUBLE_EQ(GaussianPolicy::distance(a, b), 5.0);
}

TEST(GaussianPolicy, SummarizeMixtureComputesWeightedMoments) {
  const std::vector<Vector> inputs = {Vector{-1.0}, Vector{1.0}, Vector{9.0}};
  Vector aux(3);
  aux[0] = 1.0;
  aux[1] = 1.0;
  aux[2] = 0.0;  // value 9 not in this collection
  const Gaussian g = GaussianPolicy::summarize_mixture(inputs, aux);
  EXPECT_NEAR(g.mean()[0], 0.0, 1e-12);
  EXPECT_NEAR(g.cov()(0, 0), 1.0, 1e-12);
}

TEST(GaussianPolicy, ApproxEqualChecksMeanAndCovariance) {
  const Gaussian a(Vector{0.0}, Matrix{{1.0}});
  const Gaussian b(Vector{0.0}, Matrix{{1.5}});
  EXPECT_TRUE(GaussianPolicy::approx_equal(a, a, 1e-9));
  EXPECT_FALSE(GaussianPolicy::approx_equal(a, b, 1e-9));
}

TEST(ToMixture, NormalizesQuantaIntoWeights) {
  Classification<Gaussian> c;
  c.add(Collection<Gaussian>{Gaussian(Vector{0.0}, Matrix{{1.0}}),
                             Weight::from_quanta(300), {}});
  c.add(Collection<Gaussian>{Gaussian(Vector{5.0}, Matrix{{1.0}}),
                             Weight::from_quanta(100), {}});
  const stats::GaussianMixture m = to_mixture(c);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_NEAR(m[0].weight, 0.75, 1e-12);
  EXPECT_NEAR(m[1].weight, 0.25, 1e-12);
}

TEST(ToMixture, RejectsEmptyClassification) {
  EXPECT_THROW((void)to_mixture(Classification<Gaussian>{}), ContractViolation);
}

}  // namespace
}  // namespace ddc::summaries
