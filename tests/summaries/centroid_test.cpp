#include <ddc/summaries/centroid.hpp>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>

namespace ddc::summaries {
namespace {

using core::WeightedSummary;
using linalg::Vector;

TEST(CentroidPolicy, ValToSummaryIsIdentity) {
  const Vector v{1.0, 2.0};
  EXPECT_EQ(CentroidPolicy::val_to_summary(v), v);
}

TEST(CentroidPolicy, MergeSetIsWeightedAverage) {
  const std::vector<WeightedSummary<Vector>> parts = {
      {Vector{0.0, 0.0}, 1.0}, {Vector{3.0, 6.0}, 2.0}};
  EXPECT_EQ(CentroidPolicy::merge_set(parts), (Vector{2.0, 4.0}));
}

TEST(CentroidPolicy, MergeSetRejectsEmptyAndNonPositive) {
  EXPECT_THROW((void)CentroidPolicy::merge_set({}), ContractViolation);
  EXPECT_THROW(
      (void)CentroidPolicy::merge_set({{Vector{1.0}, -1.0}}),
      ContractViolation);
}

TEST(CentroidPolicy, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(
      CentroidPolicy::distance(Vector{0.0, 0.0}, Vector{3.0, 4.0}), 5.0);
}

TEST(CentroidPolicy, SummarizeMixtureWeightsValues) {
  const std::vector<Vector> inputs = {Vector{0.0}, Vector{10.0}};
  Vector aux(2);
  aux[0] = 1.0;
  aux[1] = 3.0;
  EXPECT_EQ(CentroidPolicy::summarize_mixture(inputs, aux), (Vector{7.5}));
}

TEST(CentroidPolicy, SummarizeMixtureValidation) {
  const std::vector<Vector> inputs = {Vector{0.0}};
  EXPECT_THROW(
      (void)CentroidPolicy::summarize_mixture(inputs, Vector{1.0, 2.0}),
      ContractViolation);
  EXPECT_THROW((void)CentroidPolicy::summarize_mixture(inputs, Vector{0.0}),
               ContractViolation);
}

TEST(CentroidPolicy, ApproxEqual) {
  EXPECT_TRUE(CentroidPolicy::approx_equal(Vector{1.0}, Vector{1.0 + 1e-12},
                                           1e-9));
  EXPECT_FALSE(CentroidPolicy::approx_equal(Vector{1.0}, Vector{1.1}, 1e-9));
  EXPECT_FALSE(CentroidPolicy::approx_equal(Vector{1.0}, Vector{1.0, 2.0},
                                            1e-9));
}

}  // namespace
}  // namespace ddc::summaries
