#include <ddc/summaries/histogram_summary.hpp>

#include <gtest/gtest.h>

namespace ddc::summaries {
namespace {

using core::WeightedSummary;
using Policy = HistogramPolicy<DefaultBinning>;
using stats::Histogram;

TEST(HistogramPolicy, ValToSummaryPutsUnitMassInOneBin) {
  const Histogram h = Policy::val_to_summary(3.0);
  EXPECT_DOUBLE_EQ(h.total(), 1.0);
  EXPECT_DOUBLE_EQ(h.mass()[h.bin_of(3.0)], 1.0);
}

TEST(HistogramPolicy, MergeSetIsConvexCombination) {
  const Histogram a = Policy::val_to_summary(-10.0);
  const Histogram b = Policy::val_to_summary(10.0);
  const Histogram merged =
      Policy::merge_set({{a, 1.0}, {b, 3.0}});
  EXPECT_NEAR(merged.total(), 1.0, 1e-12);  // normalized
  EXPECT_NEAR(merged.mass()[merged.bin_of(-10.0)], 0.25, 1e-12);
  EXPECT_NEAR(merged.mass()[merged.bin_of(10.0)], 0.75, 1e-12);
}

TEST(HistogramPolicy, MergeSetNormalizesUnnormalizedParts) {
  Histogram raw = Policy::val_to_summary(5.0);
  raw.scale(7.0);  // unnormalized part
  const Histogram merged = Policy::merge_set({{raw, 2.0}});
  EXPECT_NEAR(merged.total(), 1.0, 1e-12);
  EXPECT_NEAR(merged.mass()[merged.bin_of(5.0)], 1.0, 1e-12);
}

TEST(HistogramPolicy, DistanceZeroIffSameShape) {
  const Histogram a = Policy::val_to_summary(1.0);
  const Histogram b = Policy::val_to_summary(1.0);
  const Histogram c = Policy::val_to_summary(20.0);
  EXPECT_NEAR(Policy::distance(a, b), 0.0, 1e-12);
  EXPECT_NEAR(Policy::distance(a, c), 2.0, 1e-12);  // disjoint bins
}

TEST(HistogramPolicy, SummarizeMixtureMatchesManualHistogram) {
  const std::vector<double> inputs = {-5.0, 0.0, 5.0};
  linalg::Vector aux(3);
  aux[0] = 1.0;
  aux[1] = 0.5;
  aux[2] = 0.0;
  const Histogram h = Policy::summarize_mixture(inputs, aux);
  EXPECT_NEAR(h.total(), 1.0, 1e-12);
  EXPECT_NEAR(h.mass()[h.bin_of(-5.0)], 1.0 / 1.5, 1e-12);
  EXPECT_NEAR(h.mass()[h.bin_of(0.0)], 0.5 / 1.5, 1e-12);
  EXPECT_NEAR(h.mass()[h.bin_of(5.0)], 0.0, 1e-12);
}

TEST(HistogramPolicy, HistogramsCannotSeparateSubBinClusters) {
  // The limitation the paper points out: two distinct clusters inside one
  // bin are indistinguishable to the histogram summary, while remaining
  // distinguishable to centroid/Gaussian summaries.
  constexpr double bin_width =
      (DefaultBinning::hi - DefaultBinning::lo) / DefaultBinning::bins;
  const double x1 = 0.1 * bin_width;
  const double x2 = 0.6 * bin_width;  // same bin as x1
  ASSERT_EQ(Policy::val_to_summary(x1).bin_of(x1),
            Policy::val_to_summary(x2).bin_of(x2));
  EXPECT_NEAR(
      Policy::distance(Policy::val_to_summary(x1), Policy::val_to_summary(x2)),
      0.0, 1e-12);
}

}  // namespace
}  // namespace ddc::summaries
