// Parameterized property tests of the paper's instantiation requirements
// R1–R4 (Section 4.2.1), run over every shipped summary policy. These are
// the properties the convergence theorem assumes, so the suite checks them
// directly rather than trusting the per-policy derivations.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include <ddc/core/policy.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/stats/rng.hpp>
#include <ddc/summaries/centroid.hpp>
#include <ddc/summaries/gaussian_summary.hpp>
#include <ddc/summaries/histogram_summary.hpp>

namespace ddc::summaries {
namespace {

using core::WeightedSummary;
using linalg::Vector;

// ---------------------------------------------------------------------------
// Per-policy generation traits.

template <typename P>
struct Gen;

template <>
struct Gen<CentroidPolicy> {
  static CentroidPolicy::Value random_value(stats::Rng& rng) {
    return Vector{rng.normal(), rng.normal(2.0, 3.0)};
  }
  static constexpr double tol = 1e-9;
};

template <>
struct Gen<GaussianPolicy> {
  static GaussianPolicy::Value random_value(stats::Rng& rng) {
    return Vector{rng.normal(), rng.normal(2.0, 3.0)};
  }
  static constexpr double tol = 1e-8;
};

template <>
struct Gen<HistogramPolicy<DefaultBinning>> {
  static double random_value(stats::Rng& rng) { return rng.normal(0.0, 5.0); }
  static constexpr double tol = 1e-9;
};

// ---------------------------------------------------------------------------

template <typename P>
class RequirementsTest : public ::testing::Test {
 protected:
  using Value = typename P::Value;
  using Summary = typename P::Summary;

  /// A fixed random input set (the paper's {val₁, …, valₙ}).
  std::vector<Value> make_inputs(std::size_t n, stats::Rng& rng) {
    std::vector<Value> inputs;
    inputs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) inputs.push_back(Gen<P>::random_value(rng));
    return inputs;
  }

  /// A random nonnegative mixture vector with a few nonzero entries.
  Vector random_mixture(std::size_t n, stats::Rng& rng) {
    Vector v(n);
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.bernoulli(0.5)) {
        v[i] = rng.uniform(0.01, 1.0);
        any = true;
      }
    }
    if (!any) v[rng.uniform_index(n)] = rng.uniform(0.01, 1.0);
    return v;
  }
};

using Policies = ::testing::Types<CentroidPolicy, GaussianPolicy,
                                  HistogramPolicy<DefaultBinning>>;
TYPED_TEST_SUITE(RequirementsTest, Policies);

// R2: valToSummary(valᵢ) = f(eᵢ).
TYPED_TEST(RequirementsTest, R2ValuesMapToTheirSummaries) {
  stats::Rng rng(101);
  const auto inputs = this->make_inputs(8, rng);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto direct = TypeParam::val_to_summary(inputs[i]);
    const auto via_mixture = TypeParam::summarize_mixture(
        inputs, linalg::unit_vector(inputs.size(), i));
    EXPECT_TRUE(TypeParam::approx_equal(direct, via_mixture,
                                        Gen<TypeParam>::tol))
        << "input " << i;
  }
}

// R3: f(v) = f(αv) — summaries ignore weight scaling.
TYPED_TEST(RequirementsTest, R3SummariesObliviousToWeightScaling) {
  stats::Rng rng(102);
  const auto inputs = this->make_inputs(10, rng);
  for (int trial = 0; trial < 20; ++trial) {
    const Vector v = this->random_mixture(inputs.size(), rng);
    const double alpha = rng.uniform(0.1, 10.0);
    EXPECT_TRUE(TypeParam::approx_equal(
        TypeParam::summarize_mixture(inputs, v),
        TypeParam::summarize_mixture(inputs, v * alpha), Gen<TypeParam>::tol));
  }
}

// R3 for merge_set: scaling all part weights must not change the merge.
TYPED_TEST(RequirementsTest, R3MergeSetObliviousToWeightScaling) {
  stats::Rng rng(103);
  const auto inputs = this->make_inputs(10, rng);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<WeightedSummary<typename TypeParam::Summary>> parts, scaled;
    const double alpha = rng.uniform(0.1, 10.0);
    for (int p = 0; p < 4; ++p) {
      const Vector v = this->random_mixture(inputs.size(), rng);
      const auto s = TypeParam::summarize_mixture(inputs, v);
      const double w = linalg::norm1(v);
      parts.push_back({s, w});
      scaled.push_back({s, w * alpha});
    }
    EXPECT_TRUE(TypeParam::approx_equal(TypeParam::merge_set(parts),
                                        TypeParam::merge_set(scaled),
                                        Gen<TypeParam>::tol));
  }
}

// R4: merging summaries equals summarizing the merged collection.
TYPED_TEST(RequirementsTest, R4MergeCommutesWithSummarization) {
  stats::Rng rng(104);
  const auto inputs = this->make_inputs(12, rng);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t parts_count = 2 + trial % 4;
    std::vector<WeightedSummary<typename TypeParam::Summary>> parts;
    Vector sum(inputs.size());
    for (std::size_t p = 0; p < parts_count; ++p) {
      const Vector v = this->random_mixture(inputs.size(), rng);
      parts.push_back(
          {TypeParam::summarize_mixture(inputs, v), linalg::norm1(v)});
      sum += v;
    }
    const auto merged = TypeParam::merge_set(parts);
    const auto direct = TypeParam::summarize_mixture(inputs, sum);
    EXPECT_TRUE(TypeParam::approx_equal(merged, direct, Gen<TypeParam>::tol))
        << "trial " << trial;
  }
}

// R1: dS(f(v₁), f(v₂)) ≤ ρ·dM(v₁, v₂) for some input-set-dependent ρ.
// Statistical validation: calibrate ρ on coarse pairs, then check that no
// fine (small-angle) pair exceeds a slack multiple of it — in particular
// dS must vanish as the mixture-space angle vanishes.
TYPED_TEST(RequirementsTest, R1SummaryDistanceLipschitzInMixtureAngle) {
  stats::Rng rng(105);
  const auto inputs = this->make_inputs(10, rng);

  // Calibration: coarse random pairs.
  double rho = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    const Vector v1 = this->random_mixture(inputs.size(), rng);
    const Vector v2 = this->random_mixture(inputs.size(), rng);
    const double dm = linalg::angle_between(v1, v2);
    if (dm < 1e-9) continue;
    const double ds = TypeParam::distance(
        TypeParam::summarize_mixture(inputs, v1),
        TypeParam::summarize_mixture(inputs, v2));
    rho = std::max(rho, ds / dm);
  }
  ASSERT_TRUE(std::isfinite(rho));
  const double bound = 50.0 * std::max(rho, 1e-6);

  // Verification: pairs at ever smaller angles must obey the same bound.
  for (double eps : {1e-1, 1e-2, 1e-3, 1e-4}) {
    for (int trial = 0; trial < 20; ++trial) {
      const Vector v1 = this->random_mixture(inputs.size(), rng);
      Vector v2 = v1;
      for (std::size_t i = 0; i < v2.dim(); ++i) {
        if (v2[i] > 0.0) v2[i] *= 1.0 + eps * rng.uniform(-1.0, 1.0);
      }
      const double dm = linalg::angle_between(v1, v2);
      if (dm < 1e-12) continue;
      const double ds = TypeParam::distance(
          TypeParam::summarize_mixture(inputs, v1),
          TypeParam::summarize_mixture(inputs, v2));
      EXPECT_LE(ds, bound * dm) << "eps=" << eps << " trial=" << trial;
    }
  }
}

// Sanity: dS is a pseudo-metric — nonnegative, symmetric, zero on self.
TYPED_TEST(RequirementsTest, DistanceIsPseudoMetricOnSummaries) {
  stats::Rng rng(106);
  const auto inputs = this->make_inputs(8, rng);
  for (int trial = 0; trial < 10; ++trial) {
    const auto s1 = TypeParam::summarize_mixture(
        inputs, this->random_mixture(inputs.size(), rng));
    const auto s2 = TypeParam::summarize_mixture(
        inputs, this->random_mixture(inputs.size(), rng));
    EXPECT_NEAR(TypeParam::distance(s1, s1), 0.0, 1e-12);
    EXPECT_GE(TypeParam::distance(s1, s2), 0.0);
    EXPECT_NEAR(TypeParam::distance(s1, s2), TypeParam::distance(s2, s1),
                1e-12);
  }
}

}  // namespace
}  // namespace ddc::summaries
