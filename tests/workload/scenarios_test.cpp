#include <ddc/workload/scenarios.hpp>

#include <gtest/gtest.h>

#include <ddc/stats/descriptive.hpp>

namespace ddc::workload {
namespace {

using linalg::Vector;

TEST(Fig2Mixture, HasThreeComponentsInR2) {
  const stats::GaussianMixture m = fig2_mixture();
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.dim(), 2u);
  EXPECT_NEAR(m.total_weight(), 1.0, 1e-12);
}

TEST(Fig2Mixture, RightComponentIsHotterWithLargerVariance) {
  const stats::GaussianMixture m = fig2_mixture();
  // Identify the rightmost component (largest x mean).
  std::size_t right = 0;
  for (std::size_t i = 1; i < m.size(); ++i) {
    if (m[i].gaussian.mean()[0] > m[right].gaussian.mean()[0]) right = i;
  }
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (i == right) continue;
    EXPECT_GT(m[right].gaussian.mean()[1], m[i].gaussian.mean()[1]);
    EXPECT_GT(m[right].gaussian.cov()(1, 1), m[i].gaussian.cov()(1, 1));
  }
}

TEST(SampleInputs, CountAndDimension) {
  stats::Rng rng(301);
  const auto inputs = sample_inputs(fig2_mixture(), 123, rng);
  EXPECT_EQ(inputs.size(), 123u);
  for (const auto& v : inputs) EXPECT_EQ(v.dim(), 2u);
}

TEST(OutlierScenario, PaperDefaultsProduce1000Values) {
  stats::Rng rng(302);
  const OutlierScenario s = outlier_scenario(10.0, rng);
  EXPECT_EQ(s.inputs.size(), 1000u);
  EXPECT_EQ(s.outlier_flags.size(), 1000u);
  EXPECT_EQ(s.true_mean, (Vector{0.0, 0.0}));
}

TEST(OutlierScenario, LargeDeltaFlagsEssentiallyAllPlantedOutliers) {
  stats::Rng rng(303);
  const OutlierScenario s = outlier_scenario(20.0, rng);
  std::size_t flagged_planted = 0;
  for (std::size_t i = 950; i < 1000; ++i) {
    flagged_planted += s.outlier_flags[i] ? 1 : 0;
  }
  EXPECT_EQ(flagged_planted, 50u);  // at Δ=20 every planted value is far out
}

TEST(OutlierScenario, ZeroDeltaFlagsAlmostNothing) {
  stats::Rng rng(304);
  const OutlierScenario s = outlier_scenario(0.0, rng);
  std::size_t flagged = 0;
  for (const bool f : s.outlier_flags) flagged += f ? 1 : 0;
  // At Δ=0 the "outliers" sit inside the good cluster; only genuine tail
  // values of the good distribution are flagged (a handful at most).
  EXPECT_LT(flagged, 10u);
}

TEST(OutlierScenario, GoodValuesCenterNearOrigin) {
  stats::Rng rng(305);
  const OutlierScenario s = outlier_scenario(15.0, rng);
  std::vector<stats::WeightedValue> good;
  for (std::size_t i = 0; i < 950; ++i) good.push_back({s.inputs[i], 1.0});
  EXPECT_LT(linalg::distance2(stats::weighted_mean(good), s.true_mean), 0.15);
}

TEST(LoadBalancing, TwoClustersWithinUnitInterval) {
  stats::Rng rng(306);
  const auto inputs = load_balancing_inputs(100, rng);
  std::size_t low = 0;
  for (const auto& v : inputs) {
    ASSERT_EQ(v.dim(), 1u);
    EXPECT_GE(v[0], 0.0);
    EXPECT_LE(v[0], 1.0);
    if (v[0] < 0.5) ++low;
  }
  EXPECT_EQ(low, 50u);
}

}  // namespace
}  // namespace ddc::workload
