#include <ddc/em/em_points.hpp>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/workload/scenarios.hpp>

namespace ddc::em {
namespace {

using linalg::Matrix;
using linalg::Vector;
using stats::Gaussian;
using stats::WeightedValue;

std::vector<WeightedValue> to_weighted(const std::vector<Vector>& points) {
  std::vector<WeightedValue> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back({p, 1.0});
  return out;
}

TEST(SelectK, FindsTwoComponentsInBimodalData) {
  stats::Rng rng(81);
  std::vector<WeightedValue> sample;
  for (int i = 0; i < 400; ++i) {
    sample.push_back({Vector{rng.normal(i % 2 == 0 ? 0.0 : 12.0, 1.0)}, 1.0});
  }
  const SelectKResult result = select_k(sample, 5, rng);
  EXPECT_EQ(result.best_k, 2u);
  EXPECT_EQ(result.bic.size(), 5u);
  EXPECT_EQ(result.mixture.size(), 2u);
  // BIC of the winner is the minimum of the reported curve.
  for (const double b : result.bic) EXPECT_GE(b, result.bic[1] - 1e-9);
}

TEST(SelectK, FindsThreeComponentsInTheFenceWorkload) {
  stats::Rng rng(82);
  const auto points =
      workload::sample_inputs(workload::fig2_mixture(), 600, rng);
  const SelectKResult result = select_k(to_weighted(points), 6, rng);
  EXPECT_EQ(result.best_k, 3u);
}

TEST(SelectK, SingleClusterPrefersOneComponent) {
  stats::Rng rng(83);
  std::vector<WeightedValue> sample;
  for (int i = 0; i < 300; ++i) {
    sample.push_back({Vector{rng.normal(), rng.normal()}, 1.0});
  }
  const SelectKResult result = select_k(sample, 4, rng);
  EXPECT_EQ(result.best_k, 1u);
}

TEST(SelectK, RespectsKMaxAndValidatesInput) {
  stats::Rng rng(84);
  std::vector<WeightedValue> sample = {{Vector{0.0}, 1.0}, {Vector{9.0}, 1.0}};
  const SelectKResult capped = select_k(sample, 1, rng);
  EXPECT_EQ(capped.best_k, 1u);
  EXPECT_EQ(capped.bic.size(), 1u);
  EXPECT_THROW((void)select_k({}, 3, rng), ContractViolation);
  EXPECT_THROW((void)select_k(sample, 0, rng), ContractViolation);
}

}  // namespace
}  // namespace ddc::em
