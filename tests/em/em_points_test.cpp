#include <ddc/em/em_points.hpp>

#include <algorithm>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>

namespace ddc::em {
namespace {

using linalg::Matrix;
using linalg::Vector;
using stats::Gaussian;
using stats::GaussianMixture;
using stats::WeightedValue;

GaussianMixture truth_two_components() {
  GaussianMixture m;
  m.add({0.6, Gaussian(Vector{0.0, 0.0}, Matrix::identity(2) * 0.5)});
  m.add({0.4, Gaussian(Vector{6.0, -3.0}, Matrix{{1.0, 0.3}, {0.3, 0.5}})});
  return m;
}

std::vector<WeightedValue> sample_from(const GaussianMixture& m, std::size_t n,
                                       stats::Rng& rng) {
  std::vector<WeightedValue> sample;
  sample.reserve(n);
  for (const auto& v : m.sample(rng, n)) sample.push_back({v, 1.0});
  return sample;
}

TEST(FitGmm, RecoversWellSeparatedComponents) {
  stats::Rng rng(61);
  const GaussianMixture truth = truth_two_components();
  const auto sample = sample_from(truth, 2000, rng);
  const EmResult result = fit_gmm(sample, 2, rng);
  ASSERT_EQ(result.mixture.size(), 2u);

  // Match components to truth by mean proximity.
  for (std::size_t t = 0; t < truth.size(); ++t) {
    double best = 1e9;
    std::size_t match = 0;
    for (std::size_t e = 0; e < 2; ++e) {
      const double d = linalg::distance2(truth[t].gaussian.mean(),
                                         result.mixture[e].gaussian.mean());
      if (d < best) {
        best = d;
        match = e;
      }
    }
    EXPECT_LT(best, 0.2) << "component " << t;
    EXPECT_NEAR(result.mixture[match].weight, truth[t].weight, 0.05);
    EXPECT_LT(linalg::max_abs(result.mixture[match].gaussian.cov() -
                              truth[t].gaussian.cov()),
              0.3);
  }
}

TEST(FitGmm, SingleComponentMatchesSampleMoments) {
  stats::Rng rng(62);
  const auto sample = sample_from(truth_two_components(), 1500, rng);
  const EmResult result = fit_gmm(sample, 1, rng);
  ASSERT_EQ(result.mixture.size(), 1u);
  EXPECT_LT(linalg::distance2(result.mixture[0].gaussian.mean(),
                              stats::weighted_mean(sample)),
            1e-6);
}

TEST(FitGmm, RejectsEmptySample) {
  stats::Rng rng(63);
  EXPECT_THROW((void)fit_gmm({}, 2, rng), ContractViolation);
}

TEST(EmStep, LikelihoodIsMonotone) {
  stats::Rng rng(64);
  const auto sample = sample_from(truth_two_components(), 500, rng);
  // Deliberately poor initial model.
  GaussianMixture model;
  model.add({0.5, Gaussian(Vector{-5.0, 5.0}, Matrix::identity(2) * 4.0)});
  model.add({0.5, Gaussian(Vector{10.0, 10.0}, Matrix::identity(2) * 4.0)});

  double prev = -1e300;
  for (int iter = 0; iter < 25; ++iter) {
    auto [next, ll] = em_step(sample, model, 1e-6);
    EXPECT_GE(ll, prev - 1e-7) << "iteration " << iter;
    prev = ll;
    model = std::move(next);
  }
}

TEST(EmStep, WeightsRemainNormalized) {
  stats::Rng rng(65);
  const auto sample = sample_from(truth_two_components(), 300, rng);
  GaussianMixture model;
  model.add({0.5, Gaussian(Vector{0.0, 0.0}, Matrix::identity(2))});
  model.add({0.5, Gaussian(Vector{5.0, -2.0}, Matrix::identity(2))});
  const auto [next, ll] = em_step(sample, model, 1e-6);
  (void)ll;
  EXPECT_NEAR(next.total_weight(), 1.0, 1e-9);
}

TEST(EmStep, CovarianceFloorPreventsCollapse) {
  // All mass on two identical points: without a floor the covariance would
  // collapse to zero and the next E step would blow up.
  const std::vector<WeightedValue> sample = {{Vector{1.0, 1.0}, 1.0},
                                             {Vector{1.0, 1.0}, 1.0}};
  GaussianMixture model;
  model.add({1.0, Gaussian(Vector{0.0, 0.0}, Matrix::identity(2))});
  const auto [next, ll] = em_step(sample, model, 1e-4);
  (void)ll;
  ASSERT_EQ(next.size(), 1u);
  EXPECT_GE(next[0].gaussian.cov()(0, 0), 1e-4 - 1e-12);
}

TEST(FitGmm, WeightedSampleEquivalentToReplication) {
  stats::Rng rng(66);
  std::vector<WeightedValue> weighted, replicated;
  for (int i = 0; i < 60; ++i) {
    const Vector v{rng.normal(), rng.normal()};
    const Vector u{rng.normal(8.0, 1.0), rng.normal(8.0, 1.0)};
    weighted.push_back({v, 2.0});
    weighted.push_back({u, 1.0});
    replicated.push_back({v, 1.0});
    replicated.push_back({v, 1.0});
    replicated.push_back({u, 1.0});
  }
  stats::Rng rng_a(67);
  stats::Rng rng_b(67);
  const EmResult a = fit_gmm(weighted, 2, rng_a);
  const EmResult b = fit_gmm(replicated, 2, rng_b);
  ASSERT_EQ(a.mixture.size(), b.mixture.size());
  // Same seeds + equivalent data → identical optima (means within noise).
  for (std::size_t c = 0; c < a.mixture.size(); ++c) {
    double best = 1e9;
    for (std::size_t d = 0; d < b.mixture.size(); ++d) {
      best = std::min(best,
                      linalg::distance2(a.mixture[c].gaussian.mean(),
                                        b.mixture[d].gaussian.mean()));
    }
    EXPECT_LT(best, 1e-6);
  }
}

}  // namespace
}  // namespace ddc::em
