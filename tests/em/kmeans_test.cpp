#include <ddc/em/kmeans.hpp>

#include <algorithm>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/stats/mixture.hpp>

namespace ddc::em {
namespace {

using linalg::Vector;
using stats::WeightedValue;

std::vector<WeightedValue> two_blobs(stats::Rng& rng, std::size_t per_blob) {
  std::vector<WeightedValue> sample;
  for (std::size_t i = 0; i < per_blob; ++i) {
    sample.push_back({Vector{rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)}, 1.0});
    sample.push_back(
        {Vector{rng.normal(10.0, 0.3), rng.normal(10.0, 0.3)}, 1.0});
  }
  return sample;
}

TEST(KMeansPlusPlus, ReturnsRequestedNumberOfDistinctSeeds) {
  stats::Rng rng(51);
  const auto sample = two_blobs(rng, 50);
  const auto seeds = kmeans_plus_plus_seeds(sample, 4, rng);
  EXPECT_EQ(seeds.size(), 4u);
}

TEST(KMeansPlusPlus, CapsAtDistinctPointCount) {
  stats::Rng rng(52);
  const std::vector<WeightedValue> sample = {{Vector{1.0}, 1.0},
                                             {Vector{1.0}, 1.0}};
  // Only one distinct location: seeding must stop early, not loop.
  const auto seeds = kmeans_plus_plus_seeds(sample, 5, rng);
  EXPECT_LE(seeds.size(), 2u);
  EXPECT_GE(seeds.size(), 1u);
}

TEST(KMeansPlusPlus, SpreadsSeedsAcrossClusters) {
  stats::Rng rng(53);
  const auto sample = two_blobs(rng, 100);
  const auto seeds = kmeans_plus_plus_seeds(sample, 2, rng);
  ASSERT_EQ(seeds.size(), 2u);
  // One seed per blob with overwhelming probability.
  EXPECT_GT(linalg::distance2(seeds[0], seeds[1]), 5.0);
}

TEST(KMeans, SeparatesTwoBlobs) {
  stats::Rng rng(54);
  const auto sample = two_blobs(rng, 100);
  const KMeansResult result = kmeans(sample, 2, rng);
  ASSERT_EQ(result.centers.size(), 2u);
  std::vector<Vector> sorted = result.centers;
  std::sort(sorted.begin(), sorted.end(),
            [](const Vector& a, const Vector& b) { return a[0] < b[0]; });
  EXPECT_LT(linalg::distance2(sorted[0], Vector{0.0, 0.0}), 0.5);
  EXPECT_LT(linalg::distance2(sorted[1], Vector{10.0, 10.0}), 0.5);
}

TEST(KMeans, AssignmentIsConsistentWithCenters) {
  stats::Rng rng(55);
  const auto sample = two_blobs(rng, 50);
  const KMeansResult result = kmeans(sample, 2, rng);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const std::size_t assigned = result.assignment[i];
    for (std::size_t c = 0; c < result.centers.size(); ++c) {
      EXPECT_LE(linalg::distance2(sample[i].value, result.centers[assigned]),
                linalg::distance2(sample[i].value, result.centers[c]) + 1e-9);
    }
  }
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  stats::Rng rng(56);
  const auto sample = two_blobs(rng, 100);
  const double inertia1 = kmeans(sample, 1, rng).inertia;
  const double inertia2 = kmeans(sample, 2, rng).inertia;
  EXPECT_LT(inertia2, inertia1 * 0.1);
}

TEST(KMeans, WeightsBiasCentroids) {
  // One heavy point at 0, one light at 10; with k = 1 the single centroid
  // must land near the heavy point.
  stats::Rng rng(57);
  const std::vector<WeightedValue> sample = {{Vector{0.0}, 9.0},
                                             {Vector{10.0}, 1.0}};
  const KMeansResult result = kmeans(sample, 1, rng);
  ASSERT_EQ(result.centers.size(), 1u);
  EXPECT_NEAR(result.centers[0][0], 1.0, 1e-9);
}

TEST(KMeans, KOneEqualsWeightedMean) {
  stats::Rng rng(58);
  const auto sample = two_blobs(rng, 30);
  const KMeansResult result = kmeans(sample, 1, rng);
  EXPECT_LT(linalg::distance2(result.centers[0], stats::weighted_mean(sample)),
            1e-9);
}

TEST(KMeans, RejectsEmptySample) {
  stats::Rng rng(59);
  EXPECT_THROW((void)kmeans({}, 2, rng), ContractViolation);
}

TEST(Lloyd, EmptyClustersAreCompacted) {
  stats::Rng rng(60);
  // Three seeds but only two distinct points: at least one cluster dies.
  const std::vector<WeightedValue> sample = {{Vector{0.0}, 1.0},
                                             {Vector{10.0}, 1.0}};
  const KMeansResult result =
      lloyd(sample, {Vector{0.0}, Vector{10.0}, Vector{100.0}});
  EXPECT_EQ(result.centers.size(), 2u);
  for (const std::size_t a : result.assignment) EXPECT_LT(a, 2u);
}

}  // namespace
}  // namespace ddc::em
