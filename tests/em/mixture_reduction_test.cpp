#include <ddc/em/mixture_reduction.hpp>

#include <cmath>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/core/policy.hpp>

namespace ddc::em {
namespace {

using linalg::Matrix;
using linalg::Vector;
using stats::Gaussian;
using stats::GaussianMixture;

/// Six components forming two obvious clusters around x = 0 and x = 20.
GaussianMixture two_cluster_mixture() {
  GaussianMixture m;
  m.add({1.0, Gaussian(Vector{-0.5, 0.0}, Matrix::identity(2) * 0.4)});
  m.add({2.0, Gaussian(Vector{0.0, 0.3}, Matrix::identity(2) * 0.5)});
  m.add({1.0, Gaussian(Vector{0.4, -0.2}, Matrix::identity(2) * 0.3)});
  m.add({1.5, Gaussian(Vector{20.0, 0.1}, Matrix::identity(2) * 0.4)});
  m.add({1.0, Gaussian(Vector{19.5, -0.3}, Matrix::identity(2) * 0.6)});
  m.add({0.5, Gaussian(Vector{20.5, 0.2}, Matrix::identity(2) * 0.2)});
  return m;
}

void expect_valid_reduction(const ReductionResult& r, std::size_t input_size,
                            std::size_t k) {
  EXPECT_LE(r.mixture.size(), k);
  EXPECT_EQ(r.mixture.size(), r.groups.size());
  EXPECT_TRUE(core::is_valid_grouping(r.groups, input_size));
}

void expect_weight_conserved(const GaussianMixture& input,
                             const ReductionResult& r) {
  EXPECT_NEAR(r.mixture.total_weight(), input.total_weight(), 1e-9);
}

TEST(ReduceEm, PassThroughWhenSmallEnough) {
  stats::Rng rng(71);
  const GaussianMixture input = two_cluster_mixture();
  const ReductionResult r = reduce_em(input, 10, rng);
  EXPECT_EQ(r.mixture.size(), input.size());
  EXPECT_EQ(r.iterations, 0u);
  expect_valid_reduction(r, input.size(), 10);
}

TEST(ReduceEm, SeparatesTwoClusters) {
  stats::Rng rng(72);
  const GaussianMixture input = two_cluster_mixture();
  const ReductionResult r = reduce_em(input, 2, rng);
  ASSERT_EQ(r.mixture.size(), 2u);
  expect_valid_reduction(r, input.size(), 2);
  expect_weight_conserved(input, r);

  // Inputs 0–2 belong together, 3–5 together.
  for (const auto& group : r.groups) {
    const bool left = group.front() < 3;
    for (const std::size_t i : group) EXPECT_EQ(i < 3, left);
  }
  // Merged means near 0 and 20.
  double lo = 1e9, hi = -1e9;
  for (std::size_t c = 0; c < 2; ++c) {
    lo = std::min(lo, r.mixture[c].gaussian.mean()[0]);
    hi = std::max(hi, r.mixture[c].gaussian.mean()[0]);
  }
  EXPECT_NEAR(lo, 0.0, 1.0);
  EXPECT_NEAR(hi, 20.0, 1.0);
}

TEST(ReduceEm, ObjectiveIsFiniteAndIterationsBounded) {
  stats::Rng rng(73);
  const ReductionOptions options{.max_iterations = 5, .tol = 1e-7, .restarts = 1};
  const ReductionResult r = reduce_em(two_cluster_mixture(), 2, rng, options);
  EXPECT_TRUE(std::isfinite(r.objective));
  EXPECT_LE(r.iterations, 5u);
  EXPECT_GE(r.iterations, 1u);
}

TEST(ReduceEm, RestartsNeverHurtTheObjective) {
  const GaussianMixture input = two_cluster_mixture();
  stats::Rng rng1(74);
  const double one = reduce_em(input, 2, rng1, {.restarts = 1}).objective;
  stats::Rng rng5(74);
  const double five = reduce_em(input, 2, rng5, {.restarts = 5}).objective;
  EXPECT_GE(five, one - 1e-9);
}

TEST(ReduceEm, HandlesPointMassInputs) {
  // Fresh protocol collections are point masses (zero covariance); the
  // reduction must survive them.
  GaussianMixture input;
  input.add({1.0, Gaussian::point_mass(Vector{0.0, 0.0})});
  input.add({1.0, Gaussian::point_mass(Vector{0.1, 0.0})});
  input.add({1.0, Gaussian::point_mass(Vector{9.0, 9.0})});
  stats::Rng rng(75);
  const ReductionResult r = reduce_em(input, 2, rng);
  expect_valid_reduction(r, 3, 2);
  expect_weight_conserved(input, r);
  // The two nearby point masses merge.
  bool found_pair = false;
  for (const auto& g : r.groups) {
    if (g.size() == 2) {
      EXPECT_TRUE((g[0] == 0 && g[1] == 1) || (g[0] == 1 && g[1] == 0));
      found_pair = true;
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(ReduceEm, KOneCollapsesEverything) {
  stats::Rng rng(76);
  const GaussianMixture input = two_cluster_mixture();
  const ReductionResult r = reduce_em(input, 1, rng);
  ASSERT_EQ(r.mixture.size(), 1u);
  const Gaussian collapsed = input.collapse();
  EXPECT_LT(linalg::distance2(r.mixture[0].gaussian.mean(), collapsed.mean()),
            1e-9);
  EXPECT_LT(
      linalg::max_abs(r.mixture[0].gaussian.cov() - collapsed.cov()), 1e-9);
}

TEST(ReduceRunnalls, SeparatesTwoClusters) {
  const GaussianMixture input = two_cluster_mixture();
  const ReductionResult r = reduce_runnalls(input, 2);
  ASSERT_EQ(r.mixture.size(), 2u);
  expect_valid_reduction(r, input.size(), 2);
  expect_weight_conserved(input, r);
  for (const auto& group : r.groups) {
    const bool left = group.front() < 3;
    for (const std::size_t i : group) EXPECT_EQ(i < 3, left);
  }
}

TEST(ReduceRunnalls, ReducesOneAtATimeToExactlyK) {
  const GaussianMixture input = two_cluster_mixture();
  for (std::size_t k = 1; k <= 6; ++k) {
    const ReductionResult r = reduce_runnalls(input, k);
    EXPECT_EQ(r.mixture.size(), std::min<std::size_t>(k, input.size()));
  }
}

TEST(ReduceNearestMeans, MergesByMeanDistanceOnly) {
  // A tight wide-variance component overlapping a far one: nearest-means
  // ignores covariance, so grouping follows means strictly.
  GaussianMixture input;
  input.add({1.0, Gaussian(Vector{0.0}, Matrix{{100.0}})});
  input.add({1.0, Gaussian(Vector{1.0}, Matrix{{0.01}})});
  input.add({1.0, Gaussian(Vector{10.0}, Matrix{{0.01}})});
  const ReductionResult r = reduce_nearest_means(input, 2);
  ASSERT_EQ(r.groups.size(), 2u);
  for (const auto& g : r.groups) {
    if (g.size() == 2) {
      // 0 and 1 merged (means 0 and 1 are nearest).
      EXPECT_TRUE((g[0] == 0 && g[1] == 1) || (g[0] == 1 && g[1] == 0));
    }
  }
}

TEST(Reduction, InvalidKRejected) {
  stats::Rng rng(77);
  EXPECT_THROW((void)reduce_em(two_cluster_mixture(), 0, rng),
               ContractViolation);
  EXPECT_THROW((void)reduce_runnalls(two_cluster_mixture(), 0),
               ContractViolation);
}

}  // namespace
}  // namespace ddc::em
