#include <ddc/shard/shard_map.hpp>

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/sim/topology.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::shard {
namespace {

TEST(ShardMap, BalancedContiguousPartition) {
  for (const std::size_t n : {7UL, 8UL, 100UL, 1001UL}) {
    for (const ShardId s : {ShardId{1}, ShardId{2}, ShardId{3}, ShardId{7}}) {
      const ShardMap map(n, s);
      std::size_t total = 0;
      std::size_t min_size = n;
      std::size_t max_size = 0;
      for (ShardId shard = 0; shard < s; ++shard) {
        EXPECT_EQ(map.begin(shard), total);
        EXPECT_EQ(map.end(shard) - map.begin(shard), map.size(shard));
        total += map.size(shard);
        min_size = std::min(min_size, map.size(shard));
        max_size = std::max(max_size, map.size(shard));
      }
      EXPECT_EQ(total, n);
      EXPECT_LE(max_size - min_size, 1UL);
    }
  }
}

TEST(ShardMap, ShardOfInvertsRanges) {
  const ShardMap map(103, 7);
  for (ShardId s = 0; s < map.num_shards(); ++s) {
    for (sim::NodeId i = map.begin(s); i < map.end(s); ++i) {
      EXPECT_EQ(map.shard_of(i), s);
    }
  }
}

TEST(ShardMap, SameMapOnEveryShardOfTheSameConfig) {
  // The map is derived from (n, S) alone — two independently constructed
  // maps (one per process in real deployments) must agree everywhere.
  const ShardMap a(1000, 4);
  const ShardMap b(1000, 4);
  for (sim::NodeId i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.shard_of(i), b.shard_of(i));
  }
}

TEST(ShardMap, RejectsDegenerateConfigs) {
  EXPECT_THROW(ShardMap(10, 0), ConfigError);
  EXPECT_THROW(ShardMap(3, 4), ConfigError);
  EXPECT_NO_THROW(ShardMap(4, 4));
}

TEST(ShardMap, CutEdgesCountsCrossShardTraffic) {
  // A ring cut into S contiguous arcs has S boundaries, each crossed by
  // one directed edge per direction.
  const std::size_t n = 24;
  const auto ring = sim::Topology::ring(n);
  EXPECT_EQ(ShardMap(n, 1).cut_edges(ring), 0UL);
  EXPECT_EQ(ShardMap(n, 2).cut_edges(ring), 4UL);
  EXPECT_EQ(ShardMap(n, 4).cut_edges(ring), 8UL);
  // The complete graph cut grows with shard count but never exceeds the
  // total directed edge count.
  const auto complete = sim::Topology::complete(n);
  EXPECT_LT(ShardMap(n, 2).cut_edges(complete), n * (n - 1));
  EXPECT_GT(ShardMap(n, 4).cut_edges(complete),
            ShardMap(n, 2).cut_edges(complete));
}

TEST(ShardMap, ContiguousFactoryMatchesDirectConstruction) {
  const auto grid = sim::Topology::grid(8, 16);
  const ShardMap direct(grid.num_nodes(), 4);
  const ShardMap made = ShardMap::make(Partitioner::contiguous, grid, 4);
  EXPECT_EQ(made.partitioner(), Partitioner::contiguous);
  for (sim::NodeId i = 0; i < grid.num_nodes(); ++i) {
    EXPECT_EQ(made.shard_of(i), direct.shard_of(i));
    EXPECT_EQ(made.local_index(i), direct.local_index(i));
  }
}

TEST(ShardMap, EdgecutOwnsEveryNodeExactlyOnceAndBalances) {
  stats::Rng rng(71);
  const sim::Topology topologies[] = {
      sim::Topology::grid(16, 32),
      sim::Topology::random_geometric(512, 0.1, rng),
      sim::Topology::ring(512),
  };
  for (const auto& topology : topologies) {
    for (const ShardId s : {ShardId{2}, ShardId{3}, ShardId{8}}) {
      const ShardMap map = ShardMap::make(Partitioner::edgecut, topology, s);
      const std::size_t n = topology.num_nodes();
      std::vector<std::size_t> owners_seen(n, 0);
      std::size_t min_size = n;
      std::size_t max_size = 0;
      for (ShardId shard = 0; shard < s; ++shard) {
        const auto owned = map.owned(shard);
        EXPECT_EQ(owned.size(), map.size(shard));
        min_size = std::min(min_size, owned.size());
        max_size = std::max(max_size, owned.size());
        sim::NodeId prev = 0;
        for (std::size_t j = 0; j < owned.size(); ++j) {
          const sim::NodeId i = owned[j];
          ASSERT_LT(i, n);
          ++owners_seen[i];
          EXPECT_EQ(map.shard_of(i), shard);
          EXPECT_EQ(map.local_index(i), j);
          if (j > 0) {
            EXPECT_GT(i, prev);  // owned lists stay ascending
          }
          prev = i;
        }
      }
      for (sim::NodeId i = 0; i < n; ++i) EXPECT_EQ(owners_seen[i], 1UL);
      // The refinement slack keeps shards within one node of balance
      // plus the bounded slack; never empty.
      EXPECT_GE(min_size, 1UL);
      EXPECT_LE(max_size - min_size,
                2 * std::max<std::size_t>(1, n / s / 8) + 1);
      // Shard 0 must keep node 0: shard 0's engine reports the RESULT
      // line for its first owned node, which the scripts compare
      // string-for-string against ddcsim's node-0 report.
      EXPECT_EQ(map.shard_of(0), ShardId{0});
      EXPECT_EQ(map.owned(0).front(), sim::NodeId{0});
    }
  }
}

TEST(ShardMap, EdgecutIsDeterministicAcrossConstructions) {
  stats::Rng rng(72);
  const auto topology = sim::Topology::random_geometric(400, 0.12, rng);
  const ShardMap a = ShardMap::make(Partitioner::edgecut, topology, 4);
  const ShardMap b = ShardMap::make(Partitioner::edgecut, topology, 4);
  for (sim::NodeId i = 0; i < topology.num_nodes(); ++i) {
    EXPECT_EQ(a.shard_of(i), b.shard_of(i));
    EXPECT_EQ(a.local_index(i), b.local_index(i));
  }
}

TEST(ShardMap, EdgecutNeverCutsMoreThanContiguous) {
  // The make() fallback guarantees this unconditionally; on the
  // locality-rich fixtures the cut should be strictly lower.
  stats::Rng rng(73);
  const sim::Topology locality_rich[] = {
      sim::Topology::grid(32, 64),
      sim::Topology::random_geometric(1024, 0.06, rng),
  };
  for (const auto& topology : locality_rich) {
    for (const ShardId s : {ShardId{2}, ShardId{4}, ShardId{8}}) {
      const auto edgecut = ShardMap::make(Partitioner::edgecut, topology, s);
      const auto contiguous =
          ShardMap::make(Partitioner::contiguous, topology, s);
      EXPECT_LT(edgecut.cut_edges(topology), contiguous.cut_edges(topology))
          << "shards=" << s;
    }
  }
  // Adversarial fixture where contiguous arcs are already optimal: the
  // fallback must kick in and the cut must not regress.
  const auto ring = sim::Topology::ring(256);
  for (const ShardId s : {ShardId{2}, ShardId{8}}) {
    const auto edgecut = ShardMap::make(Partitioner::edgecut, ring, s);
    const auto contiguous = ShardMap::make(Partitioner::contiguous, ring, s);
    EXPECT_LE(edgecut.cut_edges(ring), contiguous.cut_edges(ring));
  }
}

TEST(ShardMap, PartitionerNamesRoundTrip) {
  EXPECT_EQ(parse_partitioner("contiguous"), Partitioner::contiguous);
  EXPECT_EQ(parse_partitioner("edgecut"), Partitioner::edgecut);
  EXPECT_EQ(partitioner_name(Partitioner::contiguous), "contiguous");
  EXPECT_EQ(partitioner_name(Partitioner::edgecut), "edgecut");
  EXPECT_THROW((void)parse_partitioner("metis"), ConfigError);
}

}  // namespace
}  // namespace ddc::shard
