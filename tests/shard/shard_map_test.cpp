#include <ddc/shard/shard_map.hpp>

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/sim/topology.hpp>

namespace ddc::shard {
namespace {

TEST(ShardMap, BalancedContiguousPartition) {
  for (const std::size_t n : {7UL, 8UL, 100UL, 1001UL}) {
    for (const ShardId s : {ShardId{1}, ShardId{2}, ShardId{3}, ShardId{7}}) {
      const ShardMap map(n, s);
      std::size_t total = 0;
      std::size_t min_size = n;
      std::size_t max_size = 0;
      for (ShardId shard = 0; shard < s; ++shard) {
        EXPECT_EQ(map.begin(shard), total);
        EXPECT_EQ(map.end(shard) - map.begin(shard), map.size(shard));
        total += map.size(shard);
        min_size = std::min(min_size, map.size(shard));
        max_size = std::max(max_size, map.size(shard));
      }
      EXPECT_EQ(total, n);
      EXPECT_LE(max_size - min_size, 1UL);
    }
  }
}

TEST(ShardMap, ShardOfInvertsRanges) {
  const ShardMap map(103, 7);
  for (ShardId s = 0; s < map.num_shards(); ++s) {
    for (sim::NodeId i = map.begin(s); i < map.end(s); ++i) {
      EXPECT_EQ(map.shard_of(i), s);
    }
  }
}

TEST(ShardMap, SameMapOnEveryShardOfTheSameConfig) {
  // The map is derived from (n, S) alone — two independently constructed
  // maps (one per process in real deployments) must agree everywhere.
  const ShardMap a(1000, 4);
  const ShardMap b(1000, 4);
  for (sim::NodeId i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.shard_of(i), b.shard_of(i));
  }
}

TEST(ShardMap, RejectsDegenerateConfigs) {
  EXPECT_THROW(ShardMap(10, 0), ConfigError);
  EXPECT_THROW(ShardMap(3, 4), ConfigError);
  EXPECT_NO_THROW(ShardMap(4, 4));
}

TEST(ShardMap, CutEdgesCountsCrossShardTraffic) {
  // A ring cut into S contiguous arcs has S boundaries, each crossed by
  // one directed edge per direction.
  const std::size_t n = 24;
  const auto ring = sim::Topology::ring(n);
  EXPECT_EQ(ShardMap(n, 1).cut_edges(ring), 0UL);
  EXPECT_EQ(ShardMap(n, 2).cut_edges(ring), 4UL);
  EXPECT_EQ(ShardMap(n, 4).cut_edges(ring), 8UL);
  // The complete graph cut grows with shard count but never exceeds the
  // total directed edge count.
  const auto complete = sim::Topology::complete(n);
  EXPECT_LT(ShardMap(n, 2).cut_edges(complete), n * (n - 1));
  EXPECT_GT(ShardMap(n, 4).cut_edges(complete),
            ShardMap(n, 2).cut_edges(complete));
}

}  // namespace
}  // namespace ddc::shard
