// Schedule-exhaustive race explorer for the shard batch/ack protocol.
//
// The loopback and UDP transports exercise the protocol under *one*
// delivery schedule per seed; protocol races hide in the schedules a
// given transport never produces. This harness closes that gap for the
// single-round exchange: a ScriptedTransport hands every sent frame to
// the test instead of a network, and a DFS enumerates every delivery
// order of the round's batch + ack frames — optionally with a bounded
// number of drops and duplicates — asserting on every schedule that
//
//   1. liveness: the round barrier resolves (retransmits recover any
//      dropped frame; a schedule where polling every open engine makes
//      no progress is a deadlock violation), and
//   2. bit-exactness: the completed cluster's FNV digest over every
//      node's wire-encoded classification equals the 1-shard monolithic
//      digest — the paper-level invariant that shard count AND message
//      schedule are unobservable in the result.
//
// Engines are deliberately non-copyable (they own a thread pool), so
// the DFS is replay-based: each explored prefix rebuilds the world from
// scratch and re-applies its actions. Termination needs state hashing:
// retransmits re-insert byte-identical frames, so the raw schedule tree
// has cycles (deliver a retransmit, provoke another retransmit, ...).
// Within a round, engine state is a pure function of the SET of frames
// delivered to it (handlers are idempotent and commutative, retransmits
// byte-identical), and that set only grows — so hashing (pending set,
// per-shard delivered sets, completion flags, fault budgets) visits
// every reachable protocol state exactly once and cuts every cycle.
//
// A planted-bug cell re-enables a suppressed-empty-barrier-retransmit
// bug (ShardEngineOptions::testing_suppress_empty_barrier_retransmit)
// and asserts the explorer finds the resulting deadlock — proving the
// harness can actually catch a protocol race, not just pass on trunk.
#include <ddc/shard/factories.hpp>

#include <cstddef>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include <ddc/net/transport.hpp>
#include <ddc/sim/topology.hpp>
#include <ddc/wire/serialize.hpp>

namespace ddc::shard {
namespace {

// ---------------------------------------------------------------------------
// Scripted transport: sends land in a controller the test owns.
// ---------------------------------------------------------------------------

/// One frame the harness may deliver, drop or duplicate. Ordered so the
/// DFS enumerates pending frames deterministically; a retransmit is
/// byte-identical to the original, so the pending set collapses it
/// (delivering either copy is the same transition).
struct InFlight {
  net::PeerId from = 0;
  net::PeerId to = 0;
  std::vector<std::byte> bytes;

  bool operator<(const InFlight& o) const {
    return std::tie(from, to, bytes) < std::tie(o.from, o.to, o.bytes);
  }
};

/// Shared mailbox: `pending` is the schedulable frontier, `staged[s]`
/// what shard s's next receive() drains. Heap-owned by World so its
/// address survives World moves (transports keep a pointer to it).
struct ScriptController {
  std::set<InFlight> pending;
  std::vector<std::vector<net::Packet>> staged;
};

class ScriptedTransport final : public net::Transport {
 public:
  ScriptedTransport(ScriptController* ctrl, net::PeerId self,
                    std::size_t num_peers)
      : ctrl_(ctrl), self_(self), num_peers_(num_peers) {}

  [[nodiscard]] net::PeerId self() const override { return self_; }
  [[nodiscard]] std::size_t num_peers() const override { return num_peers_; }

  void send(net::PeerId to, const std::vector<std::byte>& frame) override {
    ctrl_->pending.insert(InFlight{self_, to, frame});
  }

  [[nodiscard]] std::vector<net::Packet> receive() override {
    return std::exchange(ctrl_->staged[self_], {});
  }

  [[nodiscard]] const net::LinkStats& stats(net::PeerId) const override {
    return stats_;
  }

 private:
  ScriptController* ctrl_;
  net::PeerId self_;
  std::size_t num_peers_;
  net::LinkStats stats_;
};

// ---------------------------------------------------------------------------
// World construction and replay.
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit over wire-encoded classifications (same digest as the
/// shard equivalence suite).
class Digest {
 public:
  void absorb(const std::vector<std::byte>& bytes) {
    for (const std::byte b : bytes) {
      hash_ ^= static_cast<std::uint64_t>(b);
      hash_ *= 0x100000001b3ULL;
    }
  }
  void absorb_byte(std::uint8_t b) {
    hash_ ^= b;
    hash_ *= 0x100000001b3ULL;
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }
  [[nodiscard]] std::string hex() const {
    std::ostringstream os;
    os << std::hex << std::setfill('0') << std::setw(16) << hash_;
    return os.str();
  }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

std::vector<linalg::Vector> bimodal_inputs(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<linalg::Vector> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(linalg::Vector{
        i % 2 == 0 ? rng.normal(0.0, 1.0) : rng.normal(25.0, 2.0),
        rng.normal(0.0, 1.0)});
  }
  return inputs;
}

struct Cell {
  ShardId num_shards = 2;
  std::size_t nodes = 16;
  std::uint64_t seed = 1;
  double loss = 0.0;
  bool planted_bug = false;
  std::size_t drop_budget = 0;
  std::size_t dup_budget = 0;
};

sim::EngineConfig cell_config(const Cell& cell) {
  sim::EngineConfig config;
  config.topology.family = sim::TopologyFamily::complete;
  config.topology.nodes = cell.nodes;
  config.k = 2;
  config.protocol_seed = cell.seed + 100;
  config.seed = cell.seed + 200;
  config.faults.message_loss_probability = cell.loss;
  return config;
}

ShardEngineOptions cell_options(const Cell& cell) {
  ShardEngineOptions options;
  // Retransmit on every poll so liveness never depends on poll counts,
  // and never declare peers dead — a schedule that needs the timeout to
  // finish IS a liveness bug here.
  options.resend_interval_polls = 1;
  options.max_exchange_polls = 0;
  options.overlap_chunk = 0;  // no mid-compute polls; actions drive all I/O
  options.testing_suppress_empty_barrier_retransmit = cell.planted_bug;
  return options;
}

struct World {
  std::unique_ptr<ScriptController> ctrl;
  std::vector<std::unique_ptr<ScriptedTransport>> transports;
  std::vector<CentroidShardEngine> engines;
  std::vector<bool> completed;
  /// Frames each shard has had staged+polled at least once; with
  /// idempotent handlers this set determines the engine's exchange
  /// state, making it the sound memoization ingredient.
  std::vector<std::set<InFlight>> delivered;

  [[nodiscard]] bool all_complete() const {
    for (const bool c : completed) {
      if (!c) return false;
    }
    return true;
  }
};

enum class Kind : std::uint8_t { deliver, drop, duplicate };

struct Action {
  Kind kind = Kind::deliver;
  InFlight frame;
};

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::deliver:
      return "deliver";
    case Kind::drop:
      return "drop";
    case Kind::duplicate:
      return "duplicate";
  }
  return "?";
}

std::string describe(const std::vector<Action>& actions) {
  std::ostringstream os;
  for (const Action& a : actions) {
    os << kind_name(a.kind) << "(" << a.frame.from << "->" << a.frame.to
       << ", " << a.frame.bytes.size() << "B) ";
  }
  return os.str();
}

/// A frame is *fresh* if its receiver has never had these bytes applied.
/// Only fresh deliveries can change receiver state (handlers are
/// idempotent), so only fresh frames are DFS branch points; stale
/// retransmit copies are delivered deterministically inside drain().
bool is_fresh(const World& w, const InFlight& f) {
  return w.delivered[f.to].count(f) == 0;
}

bool has_fresh(const World& w) {
  for (const InFlight& f : w.ctrl->pending) {
    if (is_fresh(w, f)) return true;
  }
  return false;
}

void stage_and_poll(World& w, const InFlight& frame) {
  w.ctrl->staged[frame.to].push_back(net::Packet{frame.from, frame.bytes});
  w.delivered[frame.to].insert(frame);
  if (!w.completed[frame.to]) {
    if (w.engines[frame.to].try_complete_round()) w.completed[frame.to] = true;
  } else {
    w.engines[frame.to].service();  // drains stale retransmits, re-acks
  }
}

/// Runs the deterministic part of the protocol until a fresh frame
/// appears (a new DFS branch point), everyone completes, or a full
/// sweep changes nothing — the last is a deadlock: the protocol is
/// waiting on a frame nobody will ever send again. A sweep polls every
/// open engine (driving retransmits) and delivers every stale pending
/// copy (the eventual-delivery fairness a real transport provides;
/// stale deliveries cannot change receiver state, only provoke re-acks,
/// so their order is immaterial — the duplicate budget is what checks
/// that idempotence claim).
bool drain(World& w) {
  while (!w.all_complete() && !has_fresh(w)) {
    bool progress = false;
    for (std::size_t s = 0; s < w.engines.size(); ++s) {
      if (w.completed[s]) continue;
      if (w.engines[s].try_complete_round()) {
        w.completed[s] = true;
        progress = true;
      }
    }
    const std::vector<InFlight> stale(w.ctrl->pending.begin(),
                                      w.ctrl->pending.end());
    for (const InFlight& f : stale) {
      if (is_fresh(w, f)) continue;  // appeared mid-sweep; DFS owns it
      const bool was_complete = w.completed[f.to];
      w.ctrl->pending.erase(f);
      stage_and_poll(w, f);
      if (w.completed[f.to] && !was_complete) progress = true;
    }
    if (has_fresh(w)) progress = true;
    if (!progress) return false;
  }
  return true;
}

/// Rebuilds the world and re-applies the action prefix; sets *deadlock
/// when the prefix (or its mandatory drain polls) wedges the barrier.
World replay(const Cell& cell, const std::vector<Action>& actions,
             bool* deadlock) {
  World w;
  w.ctrl = std::make_unique<ScriptController>();
  w.ctrl->staged.resize(cell.num_shards);
  w.delivered.resize(cell.num_shards);
  const sim::EngineConfig config = cell_config(cell);
  const auto inputs = bimodal_inputs(cell.nodes, cell.seed);
  const ShardEngineOptions options = cell_options(cell);
  for (ShardId s = 0; s < cell.num_shards; ++s) {
    w.transports.push_back(std::make_unique<ScriptedTransport>(
        w.ctrl.get(), s, cell.num_shards));
  }
  for (ShardId s = 0; s < cell.num_shards; ++s) {
    w.engines.push_back(make_centroid_shard_engine(
        sim::Topology::complete(cell.nodes), inputs, config, s,
        cell.num_shards, w.transports[s].get(), options));
  }
  w.completed.assign(cell.num_shards, false);
  for (CentroidShardEngine& engine : w.engines) engine.begin_round();
  *deadlock = false;
  for (const Action& action : actions) {
    // Replay determinism: the prefix was built against these states, so
    // every action's frame must still be schedulable.
    if (w.ctrl->pending.count(action.frame) != 1) {
      ADD_FAILURE() << "replay diverged at: " << describe(actions);
      *deadlock = true;
      return w;
    }
    switch (action.kind) {
      case Kind::deliver:
        w.ctrl->pending.erase(action.frame);
        stage_and_poll(w, action.frame);
        break;
      case Kind::drop:
        w.ctrl->pending.erase(action.frame);
        break;
      case Kind::duplicate:
        stage_and_poll(w, action.frame);
        break;
    }
    if (!drain(w)) {
      *deadlock = true;
      return w;
    }
  }
  if (!drain(w)) *deadlock = true;
  return w;
}

std::string digest_world(const World& w) {
  Digest digest;
  const ShardMap& map = w.engines.front().map();
  for (sim::NodeId i = 0; i < map.num_nodes(); ++i) {
    const auto& node = w.engines[map.shard_of(i)].nodes()[map.local_index(i)];
    digest.absorb(wire::encode_classification(node.classification()));
  }
  return digest.hex();
}

/// The oracle: the same config collapsed to one shard (no transport at
/// all). Bit-exact equality with every explored schedule is the
/// shard-count/schedule-unobservability contract.
std::string reference_digest(const Cell& cell) {
  Cell mono = cell;
  mono.num_shards = 1;
  mono.planted_bug = false;
  World w;
  w.ctrl = std::make_unique<ScriptController>();
  w.ctrl->staged.resize(1);
  w.delivered.resize(1);
  w.engines.push_back(make_centroid_shard_engine(
      sim::Topology::complete(mono.nodes),
      bimodal_inputs(mono.nodes, mono.seed), cell_config(mono), 0, 1, nullptr,
      cell_options(mono)));
  w.completed.assign(1, false);
  w.engines.front().run_round();
  return digest_world(w);
}

// ---------------------------------------------------------------------------
// The explorer: DFS with state hashing over schedulable actions.
// ---------------------------------------------------------------------------

struct ExploreStats {
  std::size_t schedules = 0;         ///< arrivals at all-complete states
  std::size_t deadlocks = 0;
  std::size_t digest_mismatches = 0;
  std::size_t states = 0;            ///< distinct protocol states visited
  std::size_t budget_hits = 0;
  std::vector<std::string> violations;
};

/// The state hash: pending set + per-shard delivered sets + completion
/// flags + remaining fault budgets. Engine exchange state is a function
/// of the delivered set (idempotent, commutative handlers), so equal
/// keys mean equal worlds — and delivered sets only grow, so every
/// cycle in the schedule tree revisits a key and is cut here.
std::uint64_t state_key(const World& w, std::size_t drops, std::size_t dups) {
  Digest d;
  for (const bool c : w.completed) d.absorb_byte(c ? 1 : 0);
  d.absorb_byte(static_cast<std::uint8_t>(drops));
  d.absorb_byte(static_cast<std::uint8_t>(dups));
  const auto absorb_frame = [&d](const InFlight& f) {
    d.absorb_byte(static_cast<std::uint8_t>(f.from));
    d.absorb_byte(static_cast<std::uint8_t>(f.to));
    d.absorb(f.bytes);
  };
  d.absorb_byte(0xaa);
  for (const InFlight& f : w.ctrl->pending) absorb_frame(f);
  for (const std::set<InFlight>& shard_set : w.delivered) {
    d.absorb_byte(0xbb);
    for (const InFlight& f : shard_set) absorb_frame(f);
  }
  return d.value();
}

constexpr std::size_t kMaxSteps = 64;

void explore(const Cell& cell, const std::string& reference,
             std::vector<Action>& prefix, std::size_t drops,
             std::size_t dups, std::set<std::uint64_t>& seen,
             ExploreStats& stats) {
  bool deadlock = false;
  const World w = replay(cell, prefix, &deadlock);
  if (deadlock) {
    ++stats.deadlocks;
    if (stats.violations.size() < 8) {
      stats.violations.push_back("deadlock after: " + describe(prefix));
    }
    return;
  }
  if (w.all_complete()) {
    ++stats.schedules;
    if (digest_world(w) != reference) {
      ++stats.digest_mismatches;
      if (stats.violations.size() < 8) {
        stats.violations.push_back("digest mismatch after: " +
                                   describe(prefix));
      }
    }
    return;
  }
  if (!seen.insert(state_key(w, drops, dups)).second) return;
  ++stats.states;
  if (prefix.size() >= kMaxSteps) {
    ++stats.budget_hits;
    return;
  }
  // Deterministic branch order: the pending set is ordered. Only fresh
  // frames branch — a stale retransmit copy cannot change receiver
  // state, so its delivery happens deterministically in drain(). The
  // drop and duplicate branches also target fresh frames only (dropping
  // or duplicating an already-applied copy is a no-op the state hash
  // would cut anyway). Each path therefore delivers each distinct frame
  // at most once, which bounds the depth by the frame alphabet plus the
  // fault budgets.
  const std::vector<InFlight> frontier(w.ctrl->pending.begin(),
                                       w.ctrl->pending.end());
  for (const InFlight& frame : frontier) {
    if (!is_fresh(w, frame)) continue;
    prefix.push_back(Action{Kind::deliver, frame});
    explore(cell, reference, prefix, drops, dups, seen, stats);
    prefix.pop_back();
    if (drops < cell.drop_budget) {
      prefix.push_back(Action{Kind::drop, frame});
      explore(cell, reference, prefix, drops + 1, dups, seen, stats);
      prefix.pop_back();
    }
    if (dups < cell.dup_budget) {
      prefix.push_back(Action{Kind::duplicate, frame});
      explore(cell, reference, prefix, drops, dups + 1, seen, stats);
      prefix.pop_back();
    }
  }
}

ExploreStats run_explorer(const Cell& cell) {
  ExploreStats stats;
  const std::string reference = reference_digest(cell);
  std::vector<Action> prefix;
  std::set<std::uint64_t> seen;
  explore(cell, reference, prefix, 0, 0, seen, stats);
  EXPECT_EQ(stats.budget_hits, 0u) << "frame budget hit — exploration "
                                      "was truncated, raise kMaxSteps";
  std::cout << "[explorer] shards=" << static_cast<unsigned>(cell.num_shards)
            << " drops<=" << cell.drop_budget << " dups<=" << cell.dup_budget
            << " -> schedules=" << stats.schedules
            << " states=" << stats.states << " deadlocks=" << stats.deadlocks
            << "\n";
  return stats;
}

void expect_clean(const ExploreStats& stats) {
  EXPECT_EQ(stats.deadlocks, 0u);
  EXPECT_EQ(stats.digest_mismatches, 0u);
  for (const std::string& v : stats.violations) ADD_FAILURE() << v;
}

// ---------------------------------------------------------------------------
// Cells.
// ---------------------------------------------------------------------------

TEST(ScheduleExplorer, TwoShardDeliveryPermutations) {
  // Pure delivery-order exhaustion (no faults): every interleaving of
  // the 2 batch + 2 ack frames (and of the retransmits the schedule
  // itself provokes), modulo protocol-state equivalence.
  Cell cell;
  cell.num_shards = 2;
  cell.nodes = 16;
  const ExploreStats stats = run_explorer(cell);
  expect_clean(stats);
  // 2 batches then 2 acks with each ack causally after its batch admit
  // at least the 6 classic interleavings.
  EXPECT_GE(stats.schedules, 6u);
  EXPECT_GE(stats.states, 6u);
}

TEST(ScheduleExplorer, TwoShardDropsAndDuplicates) {
  // The acceptance cell: every single-round delivery schedule with up
  // to one dropped and one duplicated frame, exhaustively (state
  // hashing makes the retransmit-closure finite).
  Cell cell;
  cell.num_shards = 2;
  cell.nodes = 16;
  cell.drop_budget = 1;
  cell.dup_budget = 1;
  const ExploreStats stats = run_explorer(cell);
  expect_clean(stats);
  EXPECT_GE(stats.schedules, 50u);
  EXPECT_GE(stats.states, 50u);
}

TEST(ScheduleExplorer, ThreeShardPermutations) {
  // 3 shards: 6 batch frames + up to 6 acks, all delivery orders.
  Cell cell;
  cell.num_shards = 3;
  cell.nodes = 12;
  const ExploreStats stats = run_explorer(cell);
  expect_clean(stats);
  EXPECT_GE(stats.schedules, 90u);  // >= 6!/(2!*2!*2!) batch interleavings
  EXPECT_GE(stats.states, 90u);
}

TEST(ScheduleExplorer, LossyBarrierPermutations) {
  // message_loss_probability = 1: every cross-shard record is dropped
  // sender-side, so both batch frames are bare barrier tokens — the
  // pure barrier handshake, plus a drop to force the retransmit path.
  Cell cell;
  cell.num_shards = 2;
  cell.nodes = 16;
  cell.loss = 1.0;
  cell.drop_budget = 1;
  const ExploreStats stats = run_explorer(cell);
  expect_clean(stats);
  EXPECT_GE(stats.schedules, 6u);
}

TEST(ScheduleExplorer, PlantedBugIsCaught) {
  // Re-enable the suppressed-empty-barrier-retransmit bug: empty
  // batches are barrier tokens, and a protocol that declines to
  // retransmit them deadlocks as soon as one is dropped. The explorer
  // must find that deadlock — this is the harness's self-test.
  Cell cell;
  cell.num_shards = 2;
  cell.nodes = 16;
  cell.loss = 1.0;  // all batches empty -> pure barrier round
  cell.drop_budget = 1;
  cell.planted_bug = true;
  ExploreStats stats;
  const std::string reference = reference_digest(cell);
  std::vector<Action> prefix;
  std::set<std::uint64_t> seen;
  explore(cell, reference, prefix, 0, 0, seen, stats);
  EXPECT_GT(stats.deadlocks, 0u)
      << "the planted empty-barrier-retransmit bug went undetected — "
         "the explorer has lost its teeth";
  // Fault-free schedules still complete and still agree bit-exactly.
  EXPECT_GE(stats.schedules, 1u);
  EXPECT_EQ(stats.digest_mismatches, 0u);
}

}  // namespace
}  // namespace ddc::shard
