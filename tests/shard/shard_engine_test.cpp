// Shard-count invariance suite: the sharded cluster engine against the
// monolithic RoundRunner, by FNV-1a digest of every node's wire-encoded
// final classification.
//
// Two bit-identity contracts:
//
//   1. ShardCluster(S) ≡ ShardCluster(1) for S ∈ {2, 4, 8}, across
//      3 seeds × {centroid, gm} × {lossless, loss 0.1} × {contiguous,
//      edgecut} ownership maps, plus gossip patterns, selection
//      policies, crash models, sparse topologies and injected link loss
//      (the batch retransmit layer must absorb dropped frames without
//      changing a bit).
//   2. ShardCluster(S) ≡ RoundRunner on LOSSLESS cells. Lossy cells are
//      excluded by design: the cluster derives stateless per-message
//      loss verdicts (RoundRunner's sequential loss stream is
//      unreplayable across shards — its draw count depends on message
//      emptiness, unknowable for remote senders), so it samples a
//      different, equally valid loss pattern. See DESIGN.md "Sharded
//      cluster engine".
//
// A 2-shard × 512-node smoke keeps the batching claim honest (mean
// messages per frame > 1) and doubles as the CI multi-shard gate.
#include <ddc/shard/factories.hpp>

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <ddc/gossip/runners.hpp>
#include <ddc/wire/serialize.hpp>

namespace ddc::shard {
namespace {

/// FNV-1a 64-bit over a byte string (same digest as the scale suite).
class Digest {
 public:
  void absorb(const std::vector<std::byte>& bytes) {
    for (const std::byte b : bytes) {
      hash_ ^= static_cast<std::uint64_t>(b);
      hash_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::string hex() const {
    std::ostringstream os;
    os << std::hex << std::setfill('0') << std::setw(16) << hash_;
    return os.str();
  }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

std::vector<linalg::Vector> bimodal_inputs(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<linalg::Vector> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(linalg::Vector{
        i % 2 == 0 ? rng.normal(0.0, 1.0) : rng.normal(25.0, 2.0),
        rng.normal(0.0, 1.0)});
  }
  return inputs;
}

template <typename Runner>
std::string digest_runner(const Runner& runner) {
  Digest digest;
  for (const auto& node : runner.nodes()) {
    digest.absorb(wire::encode_classification(node.classification()));
  }
  return digest.hex();
}

template <typename Cluster>
std::string digest_cluster(const Cluster& cluster) {
  Digest digest;
  for (sim::NodeId i = 0; i < cluster.map().num_nodes(); ++i) {
    digest.absorb(wire::encode_classification(cluster.node(i).classification()));
  }
  return digest.hex();
}

constexpr std::size_t kGmNodes = 48;
constexpr std::size_t kCentroidNodes = 200;
constexpr std::size_t kRounds = 20;

sim::EngineConfig base_config(std::size_t nodes, std::uint64_t seed) {
  sim::EngineConfig config;
  config.topology.family = sim::TopologyFamily::complete;
  config.topology.nodes = nodes;
  config.k = 2;
  config.protocol_seed = seed + 100;
  config.seed = seed + 200;
  return config;
}

// ---------------------------------------------------------------------------
// Contract 1 + 2: the equivalence matrix.
// ---------------------------------------------------------------------------

TEST(ShardEquivalence, CentroidMatrix) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    for (const double loss : {0.0, 0.1}) {
      sim::EngineConfig config = base_config(kCentroidNodes, seed);
      config.faults.message_loss_probability = loss;
      const auto inputs = bimodal_inputs(kCentroidNodes, seed);
      const auto topology = sim::Topology::complete(kCentroidNodes);

      auto mono = make_centroid_shard_cluster(topology, inputs, config, 1);
      mono.run_rounds(kRounds);
      const std::string reference = digest_cluster(mono);

      for (const ShardId shards : {ShardId{2}, ShardId{4}, ShardId{8}}) {
        for (const Partitioner partitioner :
             {Partitioner::contiguous, Partitioner::edgecut}) {
          auto cluster = make_centroid_shard_cluster(topology, inputs, config,
                                                     shards, {}, partitioner);
          cluster.run_rounds(kRounds);
          EXPECT_EQ(digest_cluster(cluster), reference)
              << "centroid seed=" << seed << " loss=" << loss
              << " shards=" << shards
              << " map=" << partitioner_name(partitioner);
        }
      }

      if (loss == 0.0) {
        // Lossless runs must also match the monolithic RoundRunner bit
        // for bit — the cluster is then a pure re-execution of it.
        auto runner =
            gossip::make_centroid_round_runner(topology, inputs, config);
        runner.run_rounds(kRounds);
        EXPECT_EQ(reference, digest_runner(runner))
            << "centroid vs RoundRunner seed=" << seed;
      }
    }
  }
}

TEST(ShardEquivalence, GmMatrix) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    for (const double loss : {0.0, 0.1}) {
      sim::EngineConfig config = base_config(kGmNodes, seed);
      config.faults.message_loss_probability = loss;
      const auto inputs = bimodal_inputs(kGmNodes, seed);
      const auto topology = sim::Topology::complete(kGmNodes);

      auto mono = make_gm_shard_cluster(topology, inputs, config, 1);
      mono.run_rounds(kRounds);
      const std::string reference = digest_cluster(mono);

      for (const ShardId shards : {ShardId{2}, ShardId{4}, ShardId{8}}) {
        for (const Partitioner partitioner :
             {Partitioner::contiguous, Partitioner::edgecut}) {
          auto cluster = make_gm_shard_cluster(topology, inputs, config,
                                               shards, {}, {}, partitioner);
          cluster.run_rounds(kRounds);
          EXPECT_EQ(digest_cluster(cluster), reference)
              << "gm seed=" << seed << " loss=" << loss << " shards=" << shards
              << " map=" << partitioner_name(partitioner);
        }
      }

      if (loss == 0.0) {
        auto runner = gossip::make_gm_round_runner(topology, inputs, config);
        runner.run_rounds(kRounds);
        EXPECT_EQ(reference, digest_runner(runner))
            << "gm vs RoundRunner seed=" << seed;
      }
    }
  }
}

TEST(ShardEquivalence, PatternsSelectionCrashesAndSparseTopologies) {
  struct Case {
    sim::GossipPattern pattern;
    sim::NeighborSelection selection;
    double crash;
    sim::CrashSendPolicy policy;
  };
  const Case cases[] = {
      {sim::GossipPattern::push_pull, sim::NeighborSelection::uniform_random,
       0.0, sim::CrashSendPolicy::avoid_crashed},
      {sim::GossipPattern::pull, sim::NeighborSelection::round_robin, 0.0,
       sim::CrashSendPolicy::avoid_crashed},
      {sim::GossipPattern::push, sim::NeighborSelection::uniform_random, 0.05,
       sim::CrashSendPolicy::avoid_crashed},
      {sim::GossipPattern::push_pull, sim::NeighborSelection::round_robin,
       0.05, sim::CrashSendPolicy::drop_at_crashed},
  };
  const auto topologies = {sim::Topology::grid(10, 12, false),
                           sim::Topology::ring(120)};
  for (const Case& c : cases) {
    for (const auto& topology : topologies) {
      sim::EngineConfig config = base_config(120, 7);
      config.pattern = c.pattern;
      config.selection = c.selection;
      config.faults.crash_probability = c.crash;
      config.faults.crash_send_policy = c.policy;
      const auto inputs = bimodal_inputs(120, 7);

      auto mono = make_centroid_shard_cluster(topology, inputs, config, 1);
      mono.run_rounds(kRounds);
      const std::string reference = digest_cluster(mono);

      for (const Partitioner partitioner :
           {Partitioner::contiguous, Partitioner::edgecut}) {
        auto cluster = make_centroid_shard_cluster(topology, inputs, config, 3,
                                                   {}, partitioner);
        cluster.run_rounds(kRounds);
        EXPECT_EQ(digest_cluster(cluster), reference)
            << "pattern=" << static_cast<int>(c.pattern)
            << " selection=" << static_cast<int>(c.selection)
            << " crash=" << c.crash << " map=" << partitioner_name(partitioner);
      }

      // Lossless/crashy runs still match RoundRunner exactly (crash
      // draws replay the same env stream).
      auto runner =
          gossip::make_centroid_round_runner(topology, inputs, config);
      runner.run_rounds(kRounds);
      EXPECT_EQ(reference, digest_runner(runner));
    }
  }
}

TEST(ShardEquivalence, InjectedLinkLossIsAbsorbedByRetransmits) {
  // 30% of loopback frames (batches AND acks) vanish; the seq/ack layer
  // must recover every one, leaving the digest bit-identical to the
  // clean monolithic run.
  sim::EngineConfig config = base_config(kCentroidNodes, 11);
  const auto inputs = bimodal_inputs(kCentroidNodes, 11);
  const auto topology = sim::Topology::complete(kCentroidNodes);

  auto mono = make_centroid_shard_cluster(topology, inputs, config, 1);
  mono.run_rounds(kRounds);

  net::LoopbackOptions lossy;
  lossy.seed = 99;
  lossy.loss_probability = 0.3;
  auto cluster =
      make_centroid_shard_cluster(topology, inputs, config, 4, lossy);
  cluster.run_rounds(kRounds);

  EXPECT_EQ(digest_cluster(cluster), digest_cluster(mono));
  std::uint64_t retransmits = 0;
  for (ShardId s = 0; s < 4; ++s) {
    retransmits += cluster.engine(s).stats().retransmits;
  }
  EXPECT_GT(retransmits, 0UL);
}

// ---------------------------------------------------------------------------
// The CI multi-shard smoke: 2 shards × 512 nodes, cross-checked against
// monolithic, with the batching claim asserted.
// ---------------------------------------------------------------------------

TEST(ShardSmoke, TwoShards512NodesMatchMonolithicAndBatch) {
  constexpr std::size_t kNodes = 512;
  sim::EngineConfig config = base_config(kNodes, 21);
  const auto inputs = bimodal_inputs(kNodes, 21);
  const auto topology = sim::Topology::grid(16, 32, false);

  auto mono = make_centroid_shard_cluster(topology, inputs, config, 1);
  mono.run_rounds(10);

  auto cluster = make_centroid_shard_cluster(topology, inputs, config, 2);
  cluster.run_rounds(10);

  EXPECT_EQ(digest_cluster(cluster), digest_cluster(mono));

  // Cross-shard traffic must actually batch: many logical messages per
  // frame on average (one frame per peer per round, barrier included).
  std::uint64_t frames = 0;
  std::uint64_t records = 0;
  for (ShardId s = 0; s < 2; ++s) {
    frames += cluster.engine(s).stats().batch_frames_sent;
    records += cluster.engine(s).stats().batch_records_sent;
  }
  ASSERT_GT(frames, 0UL);
  EXPECT_GT(static_cast<double>(records) / static_cast<double>(frames), 1.0);
}

// ---------------------------------------------------------------------------
// Fault handling: a silent shard times out of the barrier; a lagging
// shard catches up by replaying rounds and rejoins.
// ---------------------------------------------------------------------------

TEST(ShardFaults, SilentPeerTimesOutAndLaggardRejoins) {
  constexpr std::size_t kNodes = 60;
  sim::EngineConfig config = base_config(kNodes, 5);
  const auto inputs = bimodal_inputs(kNodes, 5);
  const auto topology = sim::Topology::complete(kNodes);
  const ShardMap map(kNodes, 2);
  const auto net_config = gossip::network_config(config);

  net::LoopbackNetwork fabric(2);
  ShardEngineOptions options = shard_options(config);
  options.resend_interval_polls = 8;
  options.max_exchange_polls = 64;
  CentroidShardEngine e0(topology, map, 0,
                         make_centroid_shard_nodes(inputs, net_config, map, 0),
                         &fabric.endpoint(0), options);
  CentroidShardEngine e1(topology, map, 1,
                         make_centroid_shard_nodes(inputs, net_config, map, 1),
                         &fabric.endpoint(1), options);

  // Round 0: healthy lockstep.
  const auto drive_both = [&] {
    e0.begin_round();
    e1.begin_round();
    bool d0 = false;
    bool d1 = false;
    for (int iter = 0; iter < 10000 && !(d0 && d1); ++iter) {
      fabric.advance();
      if (!d0) d0 = e0.try_complete_round();
      if (!d1) d1 = e1.try_complete_round();
    }
    ASSERT_TRUE(d0 && d1);
  };
  drive_both();
  EXPECT_TRUE(e0.peer_shard_alive(1));

  // Shard 1 goes silent; shard 0 must time out and keep making rounds.
  for (int r = 0; r < 2; ++r) {
    e0.begin_round();
    bool done = false;
    for (int iter = 0; iter < 10000 && !done; ++iter) {
      fabric.advance();
      done = e0.try_complete_round();
    }
    ASSERT_TRUE(done);
  }
  EXPECT_EQ(e0.round(), 3UL);
  EXPECT_FALSE(e0.peer_shard_alive(1));
  EXPECT_GT(e0.stats().peer_timeouts, 0UL);

  // Shard 1 wakes up two rounds behind. It catches up by replaying its
  // rounds (the global plan is a pure function of the seed, so its env
  // state stays consistent) and the cluster relocks.
  const std::size_t target = 5;
  bool open0 = false;
  bool open1 = false;
  for (int iter = 0; iter < 200000; ++iter) {
    if (e0.round() >= target && e1.round() >= target) break;
    if (!open0 && e0.round() < target) {
      e0.begin_round();
      open0 = true;
    }
    if (!open1 && e1.round() < target) {
      e1.begin_round();
      open1 = true;
    }
    fabric.advance();
    if (open0 && e0.try_complete_round()) open0 = false;
    if (open1 && e1.try_complete_round()) open1 = false;
  }
  EXPECT_EQ(e0.round(), target);
  EXPECT_EQ(e1.round(), target);
  EXPECT_TRUE(e0.peer_shard_alive(1));
  EXPECT_TRUE(e1.peer_shard_alive(0));
}

}  // namespace
}  // namespace ddc::shard
