// Property test: GreedyDistancePartition (cached distance matrix +
// nearest-neighbor tracking) must produce groupings EXACTLY equal — same
// groups, same order, same member order — to NaiveGreedyDistancePartition
// (the direct Algorithm 2 transcription) on randomized inputs. Bit-level
// equality of the downstream protocol hinges on this (the goldens in
// tests/sim/hotpath_golden_test.cpp hash every mantissa bit), so the
// comparison here is exact, not approximate, and the generators
// deliberately include exact distance ties via integer-lattice
// coordinates and duplicated points.
#include <ddc/partition/greedy.hpp>

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include <ddc/core/policy.hpp>
#include <ddc/linalg/matrix.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/stats/gaussian.hpp>
#include <ddc/stats/rng.hpp>
#include <ddc/summaries/centroid.hpp>
#include <ddc/summaries/gaussian_summary.hpp>

namespace ddc::partition {
namespace {

using core::Grouping;
using core::WeightedSummary;
using linalg::Matrix;
using linalg::Vector;
using stats::Gaussian;
using summaries::CentroidPolicy;
using summaries::GaussianPolicy;

static_assert(core::PartitionPolicy<NaiveGreedyDistancePartition<CentroidPolicy>,
                                    Vector>);
static_assert(core::PartitionPolicy<NaiveGreedyDistancePartition<GaussianPolicy>,
                                    Gaussian>);

/// Random point on a small integer lattice — coarse enough that equal
/// coordinates (and therefore exactly tied distances) occur routinely.
Vector lattice_point(std::size_t dim, int span, stats::Rng& rng) {
  Vector v(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    v[i] = static_cast<double>(
        static_cast<int>(rng.uniform_index(static_cast<std::size_t>(2 * span))) -
        span);
  }
  return v;
}

std::vector<WeightedSummary<Vector>> random_centroids(std::size_t m,
                                                      std::size_t dim,
                                                      stats::Rng& rng) {
  std::vector<WeightedSummary<Vector>> out;
  out.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    // Occasionally duplicate an earlier summary outright: the strongest
    // possible tie (distance exactly 0 to its twin).
    if (!out.empty() && rng.bernoulli(0.2)) {
      out.push_back({out[rng.uniform_index(out.size())].summary,
                     static_cast<double>(1 + rng.uniform_index(4))});
      continue;
    }
    out.push_back({lattice_point(dim, 3, rng),
                   static_cast<double>(1 + rng.uniform_index(4))});
  }
  return out;
}

std::vector<WeightedSummary<Gaussian>> random_gaussians(std::size_t m,
                                                        std::size_t dim,
                                                        stats::Rng& rng) {
  std::vector<WeightedSummary<Gaussian>> out;
  out.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (!out.empty() && rng.bernoulli(0.2)) {
      out.push_back({out[rng.uniform_index(out.size())].summary,
                     static_cast<double>(1 + rng.uniform_index(4))});
      continue;
    }
    // Integer-lattice means and diagonal integer covariances: exact ties
    // under the Gaussian policy's distance too. Point masses (zero
    // variance) are legal summaries and are included.
    Vector diag(dim);
    for (std::size_t c = 0; c < dim; ++c) {
      diag[c] = static_cast<double>(rng.uniform_index(3));
    }
    out.push_back({Gaussian(lattice_point(dim, 3, rng),
                            Matrix::diagonal(diag)),
                   static_cast<double>(1 + rng.uniform_index(4))});
  }
  return out;
}

template <typename SP, typename MakeInputs>
void run_property(std::uint64_t seed, std::size_t cases, MakeInputs make) {
  stats::Rng rng(seed);
  const GreedyDistancePartition<SP> optimized;
  const NaiveGreedyDistancePartition<SP> naive;
  for (std::size_t t = 0; t < cases; ++t) {
    const std::size_t m = 2 + rng.uniform_index(23);       // 2..24 inputs
    const std::size_t dim = 1 + rng.uniform_index(3);      // 1..3 dims
    const std::size_t k = 1 + rng.uniform_index(m);        // 1..m groups
    const auto inputs = make(m, dim, rng);
    const Grouping fast = optimized.partition(inputs, k);
    const Grouping slow = naive.partition(inputs, k);
    ASSERT_EQ(fast, slow) << "case " << t << ": m=" << m << " dim=" << dim
                          << " k=" << k;
    ASSERT_TRUE(core::is_valid_grouping(fast, m));
  }
}

TEST(GreedyPartitionProperty, MatchesNaiveOnRandomCentroids) {
  run_property<CentroidPolicy>(
      0xC3A7u, 120, [](std::size_t m, std::size_t dim, stats::Rng& rng) {
        return random_centroids(m, dim, rng);
      });
}

TEST(GreedyPartitionProperty, MatchesNaiveOnRandomGaussians) {
  run_property<GaussianPolicy>(
      0x6A55u, 120, [](std::size_t m, std::size_t dim, stats::Rng& rng) {
        return random_gaussians(m, dim, rng);
      });
}

// Deliberate all-tie stress: every pairwise distance is identical, so
// every merge decision is decided purely by the tie-break rule.
TEST(GreedyPartitionProperty, MatchesNaiveWhenAllDistancesTie) {
  const GreedyDistancePartition<CentroidPolicy> optimized;
  const NaiveGreedyDistancePartition<CentroidPolicy> naive;
  for (std::size_t m = 2; m <= 12; ++m) {
    std::vector<WeightedSummary<Vector>> inputs(m, {Vector{1.0, -2.0}, 2.0});
    for (std::size_t k = 1; k <= m; ++k) {
      ASSERT_EQ(optimized.partition(inputs, k), naive.partition(inputs, k))
          << "m=" << m << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace ddc::partition
