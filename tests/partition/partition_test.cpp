#include <ddc/partition/em_partition.hpp>
#include <ddc/partition/greedy.hpp>

#include <algorithm>

#include <gtest/gtest.h>

#include <ddc/core/policy.hpp>
#include <ddc/summaries/centroid.hpp>
#include <ddc/summaries/gaussian_summary.hpp>

namespace ddc::partition {
namespace {

using core::Grouping;
using core::WeightedSummary;
using linalg::Matrix;
using linalg::Vector;
using stats::Gaussian;
using summaries::CentroidPolicy;
using summaries::GaussianPolicy;

// Concept conformance: every shipped policy must satisfy PartitionPolicy.
static_assert(core::PartitionPolicy<GreedyDistancePartition<CentroidPolicy>,
                                    Vector>);
static_assert(core::PartitionPolicy<EmPartition, Gaussian>);
static_assert(core::PartitionPolicy<RunnallsPartition, Gaussian>);
static_assert(core::PartitionPolicy<NearestMeansPartition, Gaussian>);

std::vector<WeightedSummary<Vector>> centroid_line() {
  // Four centroids: two near 0, two near 100.
  return {{Vector{0.0}, 1.0},
          {Vector{1.0}, 1.0},
          {Vector{100.0}, 1.0},
          {Vector{101.0}, 1.0}};
}

TEST(GreedyDistancePartition, IdentityWhenUnderK) {
  const GreedyDistancePartition<CentroidPolicy> policy;
  const Grouping g = policy.partition(centroid_line(), 4);
  EXPECT_EQ(g.size(), 4u);
  EXPECT_TRUE(core::is_valid_grouping(g, 4));
}

TEST(GreedyDistancePartition, MergesClosestPairsFirst) {
  const GreedyDistancePartition<CentroidPolicy> policy;
  const Grouping g = policy.partition(centroid_line(), 2);
  ASSERT_EQ(g.size(), 2u);
  EXPECT_TRUE(core::is_valid_grouping(g, 4));
  for (const auto& group : g) {
    ASSERT_EQ(group.size(), 2u);
    const bool left = group.front() < 2;
    for (const std::size_t i : group) EXPECT_EQ(i < 2, left);
  }
}

TEST(GreedyDistancePartition, KOneMergesEverything) {
  const GreedyDistancePartition<CentroidPolicy> policy;
  const Grouping g = policy.partition(centroid_line(), 1);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].size(), 4u);
}

TEST(GreedyDistancePartition, MergedSummariesDriveLaterDecisions) {
  // After merging {0, 2} (closest), the merged centroid at 1 is closer to
  // the point at 3 than the point at 10 is; greedy must pick that next.
  const std::vector<WeightedSummary<Vector>> collections = {
      {Vector{0.0}, 1.0}, {Vector{3.0}, 1.0}, {Vector{2.0}, 1.0},
      {Vector{10.0}, 1.0}};
  const GreedyDistancePartition<CentroidPolicy> policy;
  const Grouping g = policy.partition(collections, 2);
  ASSERT_EQ(g.size(), 2u);
  // Expect {0, 2, 1} together and {3} alone.
  for (const auto& group : g) {
    if (group.size() == 1) {
      EXPECT_EQ(group.front(), 3u);
    }
    if (group.size() == 3) {
      EXPECT_TRUE(core::is_valid_grouping({group, {3}}, 4));
    }
  }
}

std::vector<WeightedSummary<Gaussian>> gaussian_clusters() {
  return {{Gaussian(Vector{0.0, 0.0}, Matrix::identity(2) * 0.5), 2.0},
          {Gaussian(Vector{0.5, 0.2}, Matrix::identity(2) * 0.4), 1.0},
          {Gaussian(Vector{15.0, 0.0}, Matrix::identity(2) * 0.5), 2.0},
          {Gaussian(Vector{15.5, -0.2}, Matrix::identity(2) * 0.3), 1.0}};
}

TEST(EmPartition, ProducesValidGroupingWithinK) {
  EmPartition policy{stats::Rng(81)};
  const Grouping g = policy.partition(gaussian_clusters(), 2);
  EXPECT_LE(g.size(), 2u);
  EXPECT_TRUE(core::is_valid_grouping(g, 4));
}

TEST(EmPartition, GroupsByCluster) {
  EmPartition policy{stats::Rng(82)};
  const Grouping g = policy.partition(gaussian_clusters(), 2);
  ASSERT_EQ(g.size(), 2u);
  for (const auto& group : g) {
    const bool left = group.front() < 2;
    for (const std::size_t i : group) EXPECT_EQ(i < 2, left);
  }
}

TEST(EmPartition, VarianceAwareAssignment) {
  // The Figure 1 situation as a partition decision: a point-mass collection
  // at x = 1.2 must group with the wide collection at 3, not the tight one
  // at 0, when k forces a 2-way split of {tight@0, wide@3, point@1.2}...
  // The EM E-step scores by expected log density, which accounts for
  // variance exactly as the paper argues.
  const std::vector<WeightedSummary<Gaussian>> collections = {
      {Gaussian(Vector{0.0}, Matrix{{0.02}}), 5.0},
      {Gaussian(Vector{3.0}, Matrix{{16.0}}), 5.0},
      {Gaussian::point_mass(Vector{1.2}), 1.0}};
  EmPartition policy{stats::Rng(83)};
  const Grouping g = policy.partition(collections, 2);
  ASSERT_TRUE(core::is_valid_grouping(g, 3));
  // Find the group holding index 2 (the new value).
  for (const auto& group : g) {
    for (const std::size_t i : group) {
      if (i == 2) {
        // It must share a group with the wide Gaussian (index 1).
        EXPECT_NE(std::find(group.begin(), group.end(), 1u), group.end());
      }
    }
  }
}

TEST(RunnallsPartition, ValidAndClusterRespecting) {
  const RunnallsPartition policy;
  const Grouping g = policy.partition(gaussian_clusters(), 2);
  ASSERT_EQ(g.size(), 2u);
  EXPECT_TRUE(core::is_valid_grouping(g, 4));
  for (const auto& group : g) {
    const bool left = group.front() < 2;
    for (const std::size_t i : group) EXPECT_EQ(i < 2, left);
  }
}

TEST(NearestMeansPartition, ValidGrouping) {
  const NearestMeansPartition policy;
  const Grouping g = policy.partition(gaussian_clusters(), 3);
  EXPECT_LE(g.size(), 3u);
  EXPECT_TRUE(core::is_valid_grouping(g, 4));
}

}  // namespace
}  // namespace ddc::partition
