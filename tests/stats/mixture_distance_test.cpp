#include <ddc/stats/mixture_distance.hpp>

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::stats {
namespace {

using linalg::Matrix;
using linalg::Vector;

GaussianMixture single(double mean, double var) {
  GaussianMixture m;
  m.add({1.0, Gaussian(Vector{mean}, Matrix{{var}})});
  return m;
}

TEST(MixtureDistance, ProductIntegralOfStandardNormals1D) {
  // ∫ N(x;0,1)² dx = N(0; 0, 2) = 1/√(4π).
  const GaussianMixture f = single(0.0, 1.0);
  EXPECT_NEAR(product_integral(f, f), 1.0 / std::sqrt(4.0 * std::numbers::pi),
              1e-12);
}

TEST(MixtureDistance, ProductIntegralMatchesNumericalQuadrature) {
  GaussianMixture f;
  f.add({0.6, Gaussian(Vector{0.0}, Matrix{{1.0}})});
  f.add({0.4, Gaussian(Vector{3.0}, Matrix{{0.5}})});
  GaussianMixture g;
  g.add({1.0, Gaussian(Vector{1.0}, Matrix{{2.0}})});

  double quadrature = 0.0;
  const double dx = 0.002;
  for (double x = -12.0; x < 16.0; x += dx) {
    quadrature += f.pdf(Vector{x}) * g.pdf(Vector{x}) * dx;
  }
  EXPECT_NEAR(product_integral(f, g), quadrature, 1e-5);
}

TEST(MixtureDistance, IseZeroOnIdenticalMixtures) {
  GaussianMixture f;
  f.add({0.7, Gaussian(Vector{0.0, 1.0}, Matrix::identity(2))});
  f.add({0.3, Gaussian(Vector{5.0, -2.0}, Matrix::identity(2) * 0.5)});
  EXPECT_NEAR(ise_distance(f, f), 0.0, 1e-12);
  EXPECT_NEAR(normalized_ise(f, f), 0.0, 1e-12);
}

TEST(MixtureDistance, IseInvariantUnderWeightScalingAndReordering) {
  GaussianMixture f;
  f.add({0.7, Gaussian(Vector{0.0}, Matrix{{1.0}})});
  f.add({0.3, Gaussian(Vector{4.0}, Matrix{{1.0}})});
  GaussianMixture g;  // same density, scaled weights, reversed order
  g.add({3.0, Gaussian(Vector{4.0}, Matrix{{1.0}})});
  g.add({7.0, Gaussian(Vector{0.0}, Matrix{{1.0}})});
  EXPECT_NEAR(ise_distance(f, g), 0.0, 1e-12);
}

TEST(MixtureDistance, SymmetricInArguments) {
  const GaussianMixture f = single(0.0, 1.0);
  const GaussianMixture g = single(2.0, 0.5);
  EXPECT_NEAR(ise_distance(f, g), ise_distance(g, f), 1e-15);
  EXPECT_NEAR(normalized_ise(f, g), normalized_ise(g, f), 1e-15);
}

TEST(MixtureDistance, GrowsWithSeparation) {
  const GaussianMixture f = single(0.0, 1.0);
  double prev = 0.0;
  for (double mu : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double d = normalized_ise(f, single(mu, 1.0));
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(MixtureDistance, NormalizedIseApproachesOneForDisjointSupport) {
  EXPECT_GT(normalized_ise(single(0.0, 0.1), single(100.0, 0.1)), 0.999);
}

TEST(MixtureDistance, NormalizedIseWithinUnitInterval) {
  Rng rng(77);
  for (int t = 0; t < 50; ++t) {
    GaussianMixture f, g;
    for (int c = 0; c < 3; ++c) {
      f.add({rng.uniform(0.1, 2.0),
             Gaussian(Vector{rng.normal(0.0, 5.0)},
                      Matrix{{rng.uniform(0.05, 3.0)}})});
      g.add({rng.uniform(0.1, 2.0),
             Gaussian(Vector{rng.normal(0.0, 5.0)},
                      Matrix{{rng.uniform(0.05, 3.0)}})});
    }
    const double d = normalized_ise(f, g);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(MixtureDistance, HandlesPointMassComponents) {
  GaussianMixture f;
  f.add({1.0, Gaussian::point_mass(Vector{0.0})});
  const GaussianMixture g = single(0.0, 1.0);
  EXPECT_TRUE(std::isfinite(ise_distance(f, g)));
  EXPECT_GT(ise_distance(f, g), 0.0);
}

TEST(MixtureDistance, DimensionMismatchRejected) {
  GaussianMixture f = single(0.0, 1.0);
  GaussianMixture g;
  g.add({1.0, Gaussian(2)});
  EXPECT_THROW((void)product_integral(f, g), ContractViolation);
}

}  // namespace
}  // namespace ddc::stats
