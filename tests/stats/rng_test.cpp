#include <ddc/stats/rng.hpp>

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>

namespace ddc::stats {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.uniform() == b.uniform() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, DerivedStreamsAreIndependentPerSalt) {
  Rng a = Rng::derive(42, 0);
  Rng b = Rng::derive(42, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.uniform() == b.uniform() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, DerivedStreamsAreReproducible) {
  Rng a = Rng::derive(42, 7);
  Rng b = Rng::derive(42, 7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW((void)rng.uniform(1.0, 1.0), ContractViolation);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(4);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform_index(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW((void)rng.uniform_index(0), ContractViolation);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(5);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, NormalWithZeroStddevIsDeterministic) {
  Rng rng(6);
  EXPECT_EQ(rng.normal(3.5, 0.0), 3.5);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW((void)rng.bernoulli(1.5), ContractViolation);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(8);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    counts[rng.discrete({1.0, 0.0, 3.0})]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 10000.0, 0.75, 0.03);
}

TEST(Rng, DiscreteRejectsDegenerateInputs) {
  Rng rng(9);
  EXPECT_THROW((void)rng.discrete({}), ContractViolation);
  EXPECT_THROW((void)rng.discrete({0.0, 0.0}), ContractViolation);
  EXPECT_THROW((void)rng.discrete({-1.0, 2.0}), ContractViolation);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  for (int i = 0; i < 4; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_NE(s1, 0u);
}

}  // namespace
}  // namespace ddc::stats
