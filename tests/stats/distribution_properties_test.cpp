// Statistical property tests: distributional correctness of the samplers
// and cross-checks between independent numerical paths. All seeded —
// deterministic, not flaky.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include <ddc/linalg/cholesky.hpp>
#include <ddc/linalg/eigen_sym.hpp>
#include <ddc/stats/gaussian.hpp>
#include <ddc/stats/mixture.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::stats {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(DistributionProperties, MahalanobisOfSamplesIsChiSquared) {
  // If x ~ N(µ, Σ) then (x−µ)ᵀΣ⁻¹(x−µ) ~ χ²_d. Check the first two
  // moments (mean d, variance 2d) and the median (≈ d(1−2/(9d))³).
  const std::size_t d = 3;
  const Gaussian g(Vector{1.0, -2.0, 0.5},
                   Matrix{{2.0, 0.5, 0.0}, {0.5, 1.5, 0.3}, {0.0, 0.3, 1.0}});
  Rng rng(811);
  const int n = 30000;
  std::vector<double> m2;
  m2.reserve(n);
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = g.mahalanobis_squared(g.sample(rng));
    m2.push_back(v);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, static_cast<double>(d), 0.05);
  EXPECT_NEAR(var, 2.0 * d, 0.25);
  std::nth_element(m2.begin(), m2.begin() + n / 2, m2.end());
  const double dd = static_cast<double>(d);
  const double wilson_hilferty = dd * std::pow(1.0 - 2.0 / (9.0 * dd), 3.0);
  EXPECT_NEAR(m2[n / 2], wilson_hilferty, 0.08);
}

TEST(DistributionProperties, SampleCorrelationMatchesCovariance) {
  const Gaussian g(Vector{0.0, 0.0}, Matrix{{1.0, 0.8}, {0.8, 1.0}});
  Rng rng(812);
  double sxy = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const Vector x = g.sample(rng);
    sxy += x[0] * x[1];
  }
  EXPECT_NEAR(sxy / n, 0.8, 0.03);
}

TEST(DistributionProperties, CholeskyAndEigenDeterminantsAgree) {
  Rng rng(813);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t d = 2 + trial % 4;
    Matrix b(d, d);
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t c = 0; c < d; ++c) b(r, c) = rng.normal();
    }
    Matrix a = b * linalg::transpose(b);
    for (std::size_t i = 0; i < d; ++i) a(i, i) += 0.2;

    const double chol_logdet = linalg::Cholesky(a).log_det();
    double eig_logdet = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      eig_logdet += std::log(linalg::eigen_sym(a).values[i]);
    }
    EXPECT_NEAR(chol_logdet, eig_logdet, 1e-8) << "trial " << trial;
  }
}

TEST(DistributionProperties, MixturePdfMatchesSampleHistogram) {
  // Empirical CDF of mixture samples vs integrated pdf at a few probes
  // (a coarse Kolmogorov–Smirnov-style check).
  GaussianMixture m;
  m.add({0.5, Gaussian(Vector{-2.0}, Matrix{{0.5}})});
  m.add({0.5, Gaussian(Vector{3.0}, Matrix{{1.5}})});
  Rng rng(814);
  const int n = 40000;
  std::vector<double> samples;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) samples.push_back(m.sample(rng)[0]);
  std::sort(samples.begin(), samples.end());

  for (double probe : {-3.0, -1.0, 0.5, 2.0, 4.0}) {
    const double empirical =
        static_cast<double>(std::lower_bound(samples.begin(), samples.end(),
                                             probe) -
                            samples.begin()) /
        n;
    double integrated = 0.0;
    for (double x = -10.0; x < probe; x += 0.005) {
      integrated += m.pdf(Vector{x}) * 0.005;
    }
    EXPECT_NEAR(empirical, integrated, 0.01) << "probe " << probe;
  }
}

TEST(DistributionProperties, DerivedStreamsPassLaggedCorrelationSmokeTest) {
  // Child streams with consecutive salts should be uncorrelated: estimate
  // corr between stream_i[t] and stream_{i+1}[t].
  const int streams = 16;
  const int len = 2000;
  double cross = 0.0;
  for (int s = 0; s + 1 < streams; ++s) {
    Rng a = Rng::derive(99, static_cast<std::uint64_t>(s));
    Rng b = Rng::derive(99, static_cast<std::uint64_t>(s) + 1);
    double acc = 0.0;
    for (int t = 0; t < len; ++t) {
      acc += (a.uniform() - 0.5) * (b.uniform() - 0.5);
    }
    cross += acc / len;
  }
  // Var(U−½) = 1/12; the averaged cross term should be ~N(0, small).
  EXPECT_LT(std::abs(cross / (streams - 1)), 0.005);
}

}  // namespace
}  // namespace ddc::stats
