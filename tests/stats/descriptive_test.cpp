#include <ddc/stats/descriptive.hpp>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::stats {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(Descriptive, TotalWeight) {
  const std::vector<WeightedValue> s = {{Vector{1.0}, 2.0}, {Vector{2.0}, 3.0}};
  EXPECT_DOUBLE_EQ(total_weight(s), 5.0);
}

TEST(Descriptive, RejectsNonPositiveWeights) {
  const std::vector<WeightedValue> s = {{Vector{1.0}, 0.0}};
  EXPECT_THROW((void)total_weight(s), ContractViolation);
}

TEST(Descriptive, WeightedMeanSimple) {
  const std::vector<WeightedValue> s = {{Vector{0.0, 0.0}, 1.0},
                                        {Vector{4.0, 8.0}, 3.0}};
  EXPECT_EQ(weighted_mean(s), (Vector{3.0, 6.0}));
}

TEST(Descriptive, WeightedMeanOfEmptyThrows) {
  EXPECT_THROW((void)weighted_mean({}), ContractViolation);
}

TEST(Descriptive, CovarianceOfConstantIsZero) {
  const std::vector<WeightedValue> s = {{Vector{2.0, 3.0}, 1.0},
                                        {Vector{2.0, 3.0}, 5.0}};
  EXPECT_EQ(linalg::max_abs(weighted_covariance(s)), 0.0);
}

TEST(Descriptive, CovarianceUsesPopulationConvention) {
  // Two equal-weight points at ±1: population variance is 1 (not 2).
  const std::vector<WeightedValue> s = {{Vector{-1.0}, 1.0}, {Vector{1.0}, 1.0}};
  EXPECT_NEAR(weighted_covariance(s)(0, 0), 1.0, 1e-12);
}

TEST(Descriptive, CovarianceCapturesCorrelation) {
  // Points on the line y = 2x → cov(x,y) = 2·var(x).
  std::vector<WeightedValue> s;
  for (double x : {-2.0, -1.0, 0.0, 1.0, 2.0}) {
    s.push_back({Vector{x, 2.0 * x}, 1.0});
  }
  const Matrix c = weighted_covariance(s);
  EXPECT_NEAR(c(0, 1), 2.0 * c(0, 0), 1e-12);
  EXPECT_NEAR(c(1, 1), 4.0 * c(0, 0), 1e-12);
}

TEST(Descriptive, WeightActsLikeReplication) {
  // A point with weight 3 must act exactly like three copies of it.
  const std::vector<WeightedValue> weighted = {{Vector{1.0}, 3.0},
                                               {Vector{5.0}, 1.0}};
  const std::vector<WeightedValue> replicated = {{Vector{1.0}, 1.0},
                                                 {Vector{1.0}, 1.0},
                                                 {Vector{1.0}, 1.0},
                                                 {Vector{5.0}, 1.0}};
  EXPECT_LT(linalg::distance2(weighted_mean(weighted), weighted_mean(replicated)),
            1e-12);
  EXPECT_LT(linalg::max_abs(weighted_covariance(weighted) -
                            weighted_covariance(replicated)),
            1e-12);
}

TEST(RunningMoments, MatchesTwoPassMoments) {
  Rng rng(41);
  std::vector<WeightedValue> sample;
  RunningMoments running(3);
  for (int i = 0; i < 500; ++i) {
    const Vector v{rng.normal(), rng.normal(1.0, 2.0), rng.normal(-3.0, 0.5)};
    const double w = rng.uniform(0.1, 2.0);
    sample.push_back({v, w});
    running.add(v, w);
  }
  EXPECT_LT(linalg::distance2(running.mean(), weighted_mean(sample)), 1e-10);
  EXPECT_LT(
      linalg::max_abs(running.covariance() - weighted_covariance(sample)),
      1e-10);
  EXPECT_EQ(running.count(), 500u);
}

TEST(RunningMoments, RequiresPositiveWeightAndMatchingDim) {
  RunningMoments m(2);
  EXPECT_THROW(m.add(Vector{1.0, 2.0}, 0.0), ContractViolation);
  EXPECT_THROW(m.add(Vector{1.0}, 1.0), ContractViolation);
  EXPECT_THROW((void)m.mean(), ContractViolation);  // no mass yet
}

}  // namespace
}  // namespace ddc::stats
