// Batched scoring: equivalence matrix + fast-math error bounds.
//
// ExpectedLogPdfScorer::score_batch must be bit-identical to score()
// per input on every default-path tier: the scalar reference kernel by
// construction, and the lanewise AVX2 kernel because each SIMD lane
// executes the exact scalar operation sequence (simd_avx2.cpp). The
// fast-math kernel re-associates the trace term by design, so it gets
// an explicit error bound instead: the trace is a sum of d² products
// re-grouped into 4 partial sums, so the defect is bounded by
// 64·ε·Σ|Σb⁻¹ ∘ Σa| (a standard reassociation bound with a wide safety
// margin), and the score defect by half that. Fast-math never runs in
// golden/digest tests — it is only reachable through an explicit
// --simd=avx2 / Mode::avx2 opt-in.
#include <cfloat>
#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/linalg/cholesky.hpp>
#include <ddc/linalg/simd.hpp>
#include <ddc/stats/gaussian.hpp>
#include <ddc/stats/gaussian_batch.hpp>
#include <ddc/stats/mixture.hpp>
#include <ddc/stats/rng.hpp>

namespace {

using ddc::linalg::Matrix;
using ddc::linalg::Vector;
using ddc::stats::Gaussian;
using ddc::stats::GaussianBatch;
using ddc::stats::GaussianMixture;
namespace simd = ddc::linalg::simd;

/// Restores the default (auto) dispatch mode on scope exit so these
/// tests cannot leak a forced tier into the rest of the binary.
struct ModeGuard {
  ~ModeGuard() { simd::configure(simd::Mode::auto_detect); }
};

Matrix random_spd(std::size_t d, ddc::stats::Rng& rng, double ridge) {
  Matrix b(d, d);
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) b(r, c) = rng.normal();
  }
  Matrix a = b * ddc::linalg::transpose(b);
  for (std::size_t i = 0; i < d; ++i) a(i, i) += ridge;
  return ddc::linalg::symmetrize(a);
}

Vector random_vector(std::size_t d, ddc::stats::Rng& rng) {
  Vector v(d);
  for (std::size_t i = 0; i < d; ++i) v[i] = rng.normal();
  return v;
}

/// Mixed batch: healthy components, point masses (zero covariance),
/// barely-ridged and near-rank-1 covariances — the shapes an EM E step
/// actually scores. Sized to cover both the 4-lane body and the
/// scalar remainder of the lanewise kernel (size % 4 == 3).
GaussianMixture adversarial_inputs(std::size_t d, ddc::stats::Rng& rng) {
  GaussianMixture out;
  for (int i = 0; i < 4; ++i) {
    out.add({1.0, Gaussian(random_vector(d, rng), random_spd(d, rng, 0.5))});
  }
  out.add({1.0, Gaussian::point_mass(random_vector(d, rng))});
  out.add({1.0, Gaussian(random_vector(d, rng), random_spd(d, rng, 1e-9))});
  Matrix u(d, 1);
  for (std::size_t r = 0; r < d; ++r) u(r, 0) = rng.normal();
  Matrix nearly = u * ddc::linalg::transpose(u);
  for (std::size_t i = 0; i < d; ++i) nearly(i, i) += 1e-10;
  out.add({1.0,
           Gaussian(random_vector(d, rng), ddc::linalg::symmetrize(nearly))});
  return out;
}

std::vector<Gaussian> test_models(std::size_t d, ddc::stats::Rng& rng) {
  std::vector<Gaussian> models;
  models.push_back(Gaussian(random_vector(d, rng), random_spd(d, rng, 0.5)));
  models.push_back(Gaussian::point_mass(random_vector(d, rng)));
  models.push_back(Gaussian(random_vector(d, rng), random_spd(d, rng, 1e-6)));
  return models;
}

class ScoreBatch : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScoreBatch, MatchesScoreExactlyOnDefaultPath) {
  // Whatever the ambient tier is (scalar everywhere, lanewise AVX2 on
  // capable hosts), score_batch must equal score() bit for bit.
  const std::size_t d = GetParam();
  ddc::stats::Rng rng(500 + d);
  for (int rep = 0; rep < 20; ++rep) {
    const GaussianMixture inputs = adversarial_inputs(d, rng);
    GaussianBatch batch;
    batch.assign(inputs);
    std::vector<double> out(batch.size());
    for (const Gaussian& model : test_models(d, rng)) {
      const ddc::stats::ExpectedLogPdfScorer scorer(model);
      scorer.score_batch(batch, out.data());
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        EXPECT_EQ(out[i], scorer.score(inputs[i].gaussian))
            << "d=" << d << " input=" << i;
      }
    }
  }
}

TEST_P(ScoreBatch, ScalarAndLanewiseKernelsBitIdentical) {
  // The heart of the bit-exactness contract: the lanewise AVX2 kernel
  // (when this binary and CPU have it) against the scalar reference,
  // same inputs, EXPECT_EQ on every output.
  const simd::ScoreBatchFn lanewise = simd::avx2_lanewise_score_kernel();
  if (lanewise == nullptr || !simd::cpu_supports_avx2()) {
    GTEST_SKIP() << "no AVX2 kernels in this binary/CPU";
  }
  const simd::ScoreBatchFn scalar = simd::scalar_score_kernel();
  const std::size_t d = GetParam();
  ddc::stats::Rng rng(600 + d);
  ModeGuard guard;
  for (int rep = 0; rep < 20; ++rep) {
    const GaussianMixture inputs = adversarial_inputs(d, rng);
    GaussianBatch batch;
    batch.assign(inputs);
    std::vector<double> scalar_out(batch.size());
    std::vector<double> lane_out(batch.size());
    for (const Gaussian& model : test_models(d, rng)) {
      const ddc::stats::ExpectedLogPdfScorer scorer(model);
      simd::configure(simd::Mode::scalar);
      ASSERT_EQ(simd::batch_score_kernel(), scalar);
      scorer.score_batch(batch, scalar_out.data());
      simd::configure(simd::Mode::auto_detect);
      ASSERT_EQ(simd::batch_score_kernel(), lanewise);
      scorer.score_batch(batch, lane_out.data());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(lane_out[i], scalar_out[i]) << "d=" << d << " input=" << i;
      }
    }
  }
}

TEST_P(ScoreBatch, FastMathWithinDocumentedErrorBound) {
  // Error-bound contract for the fast-math tier: the only deviation is
  // the re-associated trace term, so per input
  //   |fast − scalar| ≤ ½ · 64 · ε · Σₑ |Σb⁻¹[e] · Σa[e]|.
  // The 64·ε factor is deliberately generous (the true reassociation
  // constant for ≤16 terms in 4 partial sums is a few ε); a kernel bug
  // (wrong element, dropped term) lands orders of magnitude outside it.
  const simd::ScoreBatchFn fast = simd::fast_math_score_kernel();
  if (fast == nullptr || !simd::cpu_supports_avx2()) {
    GTEST_SKIP() << "no AVX2 kernels in this binary/CPU";
  }
  const std::size_t d = GetParam();
  ddc::stats::Rng rng(700 + d);
  for (int rep = 0; rep < 20; ++rep) {
    const GaussianMixture inputs = adversarial_inputs(d, rng);
    GaussianBatch batch;
    batch.assign(inputs);
    std::vector<double> scalar_out(batch.size());
    std::vector<double> fast_out(batch.size());
    std::vector<double> scratch(8 * d);
    for (const Gaussian& model : test_models(d, rng)) {
      const ddc::stats::ExpectedLogPdfScorer scorer(model);
      scorer.score_batch(batch, scalar_out.data());  // ambient: bit-exact
      // Drive the fast-math kernel directly through the seam's accessor
      // (the golden-path scorer never selects it without Mode::avx2).
      const Matrix inverse =
          ddc::linalg::regularized_cholesky(model.cov()).inverse();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const Matrix& cov = inputs[i].gaussian.cov();
        double abs_sum = 0.0;
        for (std::size_t r = 0; r < d; ++r) {
          for (std::size_t c = 0; c < d; ++c) {
            abs_sum += std::abs(inverse(r, c) * cov(r, c));
          }
        }
        const double bound = 0.5 * 64.0 * DBL_EPSILON * abs_sum;
        // Score the whole batch once per model, then check input i.
        if (i == 0) {
          ddc::stats::ExpectedLogPdfScorer probe(model);
          // Reach the raw kernel with the probe's packed view via the
          // public batch API under an explicit fast-math opt-in.
          ModeGuard guard;
          simd::configure(simd::Mode::avx2);
          ASSERT_EQ(simd::batch_score_kernel(), fast);
          ASSERT_TRUE(simd::fast_math_enabled());
          probe.score_batch(batch, fast_out.data());
        }
        EXPECT_NEAR(fast_out[i], scalar_out[i], bound)
            << "d=" << d << " input=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDims, ScoreBatch,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(SimdSeam, ParseAndNames) {
  EXPECT_EQ(simd::parse_mode("auto"), simd::Mode::auto_detect);
  EXPECT_EQ(simd::parse_mode("scalar"), simd::Mode::scalar);
  EXPECT_EQ(simd::parse_mode("avx2"), simd::Mode::avx2);
  EXPECT_FALSE(simd::parse_mode("fast").has_value());
  EXPECT_STREQ(simd::mode_name(simd::Mode::auto_detect), "auto");
  EXPECT_STREQ(simd::mode_name(simd::Mode::scalar), "scalar");
  EXPECT_STREQ(simd::mode_name(simd::Mode::avx2), "avx2");
}

TEST(SimdSeam, ScalarModeForcesCleanFallback) {
  ModeGuard guard;
  simd::configure(simd::Mode::scalar);
  EXPECT_EQ(simd::dispatch(), simd::Tier::scalar);
  EXPECT_FALSE(simd::fast_math_enabled());
  EXPECT_EQ(simd::batch_score_kernel(), simd::scalar_score_kernel());
}

TEST(SimdSeam, AutoNeverEnablesFastMath) {
  ModeGuard guard;
  simd::configure(simd::Mode::auto_detect);
  EXPECT_FALSE(simd::fast_math_enabled());
  if (simd::compiled_with_avx2() && simd::cpu_supports_avx2()) {
    EXPECT_EQ(simd::dispatch(), simd::Tier::avx2);
    EXPECT_EQ(simd::batch_score_kernel(), simd::avx2_lanewise_score_kernel());
  } else {
    EXPECT_EQ(simd::dispatch(), simd::Tier::scalar);
  }
}

TEST(SimdSeam, Avx2ModeStrictWhenUnavailable) {
  ModeGuard guard;
  if (simd::compiled_with_avx2() && simd::cpu_supports_avx2()) {
    simd::configure(simd::Mode::avx2);
    EXPECT_EQ(simd::dispatch(), simd::Tier::avx2);
    EXPECT_TRUE(simd::fast_math_enabled());
  } else {
    EXPECT_THROW(simd::configure(simd::Mode::avx2), ddc::ConfigError);
  }
}

}  // namespace
