#include <ddc/stats/mixture.hpp>

#include <cmath>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/stats/descriptive.hpp>

namespace ddc::stats {
namespace {

using linalg::Matrix;
using linalg::Vector;

GaussianMixture two_component_1d() {
  GaussianMixture m;
  m.add({0.7, Gaussian(Vector{0.0}, Matrix{{1.0}})});
  m.add({0.3, Gaussian(Vector{5.0}, Matrix{{0.5}})});
  return m;
}

TEST(GaussianMixture, SizeAndTotals) {
  const GaussianMixture m = two_component_1d();
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.dim(), 1u);
  EXPECT_NEAR(m.total_weight(), 1.0, 1e-12);
}

TEST(GaussianMixture, RejectsInconsistentComponents) {
  GaussianMixture m;
  m.add({1.0, Gaussian(1)});
  EXPECT_THROW(m.add({1.0, Gaussian(2)}), ContractViolation);
  EXPECT_THROW(m.add({0.0, Gaussian(1)}), ContractViolation);
}

TEST(GaussianMixture, PdfIsWeightedSumOfComponentPdfs) {
  const GaussianMixture m = two_component_1d();
  const Vector x{1.3};
  const double expected =
      0.7 * m[0].gaussian.pdf(x) + 0.3 * m[1].gaussian.pdf(x);
  EXPECT_NEAR(m.pdf(x), expected, 1e-12);
}

TEST(GaussianMixture, PdfNormalizesUnnormalizedWeights) {
  GaussianMixture m;
  m.add({7.0, Gaussian(Vector{0.0}, Matrix{{1.0}})});
  m.add({3.0, Gaussian(Vector{5.0}, Matrix{{0.5}})});
  const GaussianMixture reference = two_component_1d();
  EXPECT_NEAR(m.pdf(Vector{2.0}), reference.pdf(Vector{2.0}), 1e-12);
}

TEST(GaussianMixture, LogPdfHandlesFarTails) {
  const GaussianMixture m = two_component_1d();
  const double lp = m.log_pdf(Vector{100.0});
  EXPECT_TRUE(std::isfinite(lp));
  EXPECT_LT(lp, -1000.0);
}

TEST(GaussianMixture, ResponsibilitiesSumToOne) {
  const GaussianMixture m = two_component_1d();
  for (double x : {-3.0, 0.0, 2.5, 5.0, 9.0}) {
    const auto r = m.responsibilities(Vector{x});
    EXPECT_NEAR(r[0] + r[1], 1.0, 1e-12);
  }
}

TEST(GaussianMixture, ClassifyPicksTheObviousComponent) {
  const GaussianMixture m = two_component_1d();
  EXPECT_EQ(m.classify(Vector{0.1}), 0u);
  EXPECT_EQ(m.classify(Vector{5.1}), 1u);
}

TEST(GaussianMixture, ClassifyAccountsForVariance) {
  // The paper's Figure 1 scenario: the new value is closer to A's mean,
  // but B's much larger variance makes B the better explanation.
  GaussianMixture m;
  m.add({0.5, Gaussian(Vector{0.0}, Matrix{{0.05}})});   // A: tight
  m.add({0.5, Gaussian(Vector{3.0}, Matrix{{16.0}})});   // B: wide
  EXPECT_EQ(m.classify(Vector{1.2}), 1u);  // nearer A, but B wins
}

TEST(GaussianMixture, SampleFrequenciesMatchWeights) {
  const GaussianMixture m = two_component_1d();
  Rng rng(31);
  int near_five = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (m.sample(rng)[0] > 2.5) ++near_five;
  }
  EXPECT_NEAR(static_cast<double>(near_five) / n, 0.3, 0.02);
}

TEST(GaussianMixture, MeanIsWeightCombinationOfComponentMeans) {
  const GaussianMixture m = two_component_1d();
  EXPECT_NEAR(m.mean()[0], 0.7 * 0.0 + 0.3 * 5.0, 1e-12);
}

TEST(GaussianMixture, CollapseMatchesSampleMoments) {
  const GaussianMixture m = two_component_1d();
  Rng rng(32);
  RunningMoments moments(1);
  for (int i = 0; i < 60000; ++i) moments.add(m.sample(rng));
  const Gaussian c = m.collapse();
  EXPECT_NEAR(c.mean()[0], moments.mean()[0], 0.05);
  EXPECT_NEAR(c.cov()(0, 0), moments.covariance()(0, 0), 0.15);
}

TEST(GaussianMixture, BatchSampleCount) {
  const GaussianMixture m = two_component_1d();
  Rng rng(33);
  EXPECT_EQ(m.sample(rng, 17).size(), 17u);
}

}  // namespace
}  // namespace ddc::stats
