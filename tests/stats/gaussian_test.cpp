#include <ddc/stats/gaussian.hpp>

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/stats/descriptive.hpp>

namespace ddc::stats {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(Gaussian, StandardNormalDensityAtOrigin1D) {
  const Gaussian g(1);
  EXPECT_NEAR(g.pdf(Vector{0.0}), 1.0 / std::sqrt(2.0 * std::numbers::pi),
              1e-12);
}

TEST(Gaussian, StandardNormalDensityAtOrigin2D) {
  const Gaussian g(2);
  EXPECT_NEAR(g.pdf(Vector{0.0, 0.0}), 1.0 / (2.0 * std::numbers::pi), 1e-12);
}

TEST(Gaussian, DensityIntegratesToOne1D) {
  // Trapezoidal integration over [-8, 8].
  const Gaussian g(Vector{0.5}, Matrix{{2.0}});
  double integral = 0.0;
  const double dx = 0.001;
  for (double x = -8.0; x < 8.0; x += dx) {
    integral += g.pdf(Vector{x}) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 1e-4);
}

TEST(Gaussian, LogPdfConsistentWithPdf) {
  const Gaussian g(Vector{1.0, -1.0}, Matrix{{2.0, 0.3}, {0.3, 1.0}});
  const Vector x{0.2, 0.7};
  EXPECT_NEAR(std::exp(g.log_pdf(x)), g.pdf(x), 1e-12);
}

TEST(Gaussian, DensityPeaksAtMean) {
  const Gaussian g(Vector{2.0, 3.0}, Matrix{{1.5, 0.2}, {0.2, 0.8}});
  const double at_mean = g.pdf(Vector{2.0, 3.0});
  EXPECT_GT(at_mean, g.pdf(Vector{2.5, 3.0}));
  EXPECT_GT(at_mean, g.pdf(Vector{2.0, 2.0}));
}

TEST(Gaussian, MahalanobisOfMeanIsZero) {
  const Gaussian g(Vector{1.0, 2.0}, Matrix::identity(2) * 3.0);
  EXPECT_NEAR(g.mahalanobis_squared(Vector{1.0, 2.0}), 0.0, 1e-12);
  EXPECT_NEAR(g.mahalanobis_squared(Vector{1.0 + std::sqrt(3.0), 2.0}), 1.0,
              1e-12);
}

TEST(Gaussian, PointMassHasZeroCovarianceButFiniteDensity) {
  const Gaussian g = Gaussian::point_mass(Vector{1.0, 2.0});
  EXPECT_EQ(linalg::max_abs(g.cov()), 0.0);
  EXPECT_TRUE(std::isfinite(g.log_pdf(Vector{1.0, 2.0})));
}

TEST(Gaussian, SphericalFactory) {
  const Gaussian g = Gaussian::spherical(Vector{0.0, 0.0}, 2.0);
  EXPECT_EQ(g.cov(), Matrix::identity(2) * 4.0);
  EXPECT_THROW((void)Gaussian::spherical(Vector{0.0}, -1.0), ContractViolation);
}

TEST(Gaussian, RejectsAsymmetricCovariance) {
  EXPECT_THROW(Gaussian(Vector{0.0, 0.0}, Matrix{{1.0, 0.5}, {0.0, 1.0}}),
               ContractViolation);
}

TEST(Gaussian, RejectsShapeMismatch) {
  EXPECT_THROW(Gaussian(Vector{0.0}, Matrix::identity(2)), ContractViolation);
}

TEST(Gaussian, SampleMomentsMatchParameters) {
  const Gaussian g(Vector{1.0, -2.0}, Matrix{{2.0, 0.8}, {0.8, 1.0}});
  Rng rng(99);
  RunningMoments moments(2);
  for (int i = 0; i < 40000; ++i) moments.add(g.sample(rng));
  EXPECT_LT(linalg::distance2(moments.mean(), g.mean()), 0.03);
  EXPECT_LT(linalg::max_abs(moments.covariance() - g.cov()), 0.08);
}

TEST(Gaussian, KlOfIdenticalIsZero) {
  const Gaussian g(Vector{1.0, 2.0}, Matrix{{1.0, 0.2}, {0.2, 2.0}});
  EXPECT_NEAR(kl_divergence(g, g), 0.0, 1e-10);
}

TEST(Gaussian, KlIsAsymmetricAndPositive) {
  const Gaussian a(Vector{0.0}, Matrix{{1.0}});
  const Gaussian b(Vector{1.0}, Matrix{{4.0}});
  const double ab = kl_divergence(a, b);
  const double ba = kl_divergence(b, a);
  EXPECT_GT(ab, 0.0);
  EXPECT_GT(ba, 0.0);
  EXPECT_NE(ab, ba);
  EXPECT_NEAR(symmetric_kl(a, b), ab + ba, 1e-12);
}

TEST(Gaussian, Kl1DClosedForm) {
  // KL(N(µ1,σ1²)‖N(µ2,σ2²)) = log(σ2/σ1) + (σ1² + (µ1−µ2)²)/(2σ2²) − ½.
  const double mu1 = 0.5, s1 = 1.5, mu2 = -0.3, s2 = 0.8;
  const Gaussian a(Vector{mu1}, Matrix{{s1 * s1}});
  const Gaussian b(Vector{mu2}, Matrix{{s2 * s2}});
  const double expected = std::log(s2 / s1) +
                          (s1 * s1 + (mu1 - mu2) * (mu1 - mu2)) /
                              (2.0 * s2 * s2) -
                          0.5;
  EXPECT_NEAR(kl_divergence(a, b), expected, 1e-10);
}

TEST(Gaussian, BhattacharyyaSymmetricZeroOnIdentical) {
  const Gaussian a(Vector{0.0, 1.0}, Matrix{{1.0, 0.0}, {0.0, 2.0}});
  const Gaussian b(Vector{3.0, 1.0}, Matrix{{2.0, 0.5}, {0.5, 1.0}});
  EXPECT_NEAR(bhattacharyya(a, a), 0.0, 1e-10);
  EXPECT_NEAR(bhattacharyya(a, b), bhattacharyya(b, a), 1e-12);
  EXPECT_GT(bhattacharyya(a, b), 0.0);
}

TEST(Gaussian, ExpectedLogPdfOfSelfBeatsOthers) {
  // E_a[log b] is maximized over means when b's mean equals a's.
  const Gaussian a(Vector{1.0}, Matrix{{1.0}});
  const Gaussian b_same(Vector{1.0}, Matrix{{1.0}});
  const Gaussian b_far(Vector{4.0}, Matrix{{1.0}});
  EXPECT_GT(expected_log_pdf(a, b_same), expected_log_pdf(a, b_far));
}

TEST(Gaussian, ExpectedLogPdfClosedForm1D) {
  // For a = N(0,1), b = N(0,1): E[log b] = −½log(2π) − ½.
  const Gaussian g(1);
  EXPECT_NEAR(expected_log_pdf(g, g),
              -0.5 * std::log(2.0 * std::numbers::pi) - 0.5, 1e-9);
}

TEST(MomentMatch, SinglePartIsIdentity) {
  const Gaussian g(Vector{1.0, 2.0}, Matrix{{1.0, 0.1}, {0.1, 1.0}});
  const Gaussian m = moment_match({{2.5, g}});
  EXPECT_LT(linalg::distance2(m.mean(), g.mean()), 1e-12);
  EXPECT_LT(linalg::max_abs(m.cov() - g.cov()), 1e-12);
}

TEST(MomentMatch, TwoPointMassesGiveBernoulliMoments) {
  const Gaussian a = Gaussian::point_mass(Vector{0.0});
  const Gaussian b = Gaussian::point_mass(Vector{1.0});
  const Gaussian m = moment_match({{1.0, a}, {1.0, b}});
  EXPECT_NEAR(m.mean()[0], 0.5, 1e-12);
  EXPECT_NEAR(m.cov()(0, 0), 0.25, 1e-12);  // variance of fair Bernoulli
}

TEST(MomentMatch, MatchesDirectMomentsOfPooledSample) {
  // Moment-matching two sub-sample Gaussians must equal the moments of the
  // pooled sample (this is the heart of requirement R4 for GM summaries).
  Rng rng(13);
  std::vector<WeightedValue> left, right, all;
  for (int i = 0; i < 50; ++i) {
    const Vector v{rng.normal(), rng.normal(2.0, 3.0)};
    (i % 2 == 0 ? left : right).push_back({v, 1.0});
    all.push_back({v, 1.0});
  }
  const Gaussian gl(weighted_mean(left), weighted_covariance(left));
  const Gaussian gr(weighted_mean(right), weighted_covariance(right));
  const Gaussian merged = moment_match(
      {{static_cast<double>(left.size()), gl},
       {static_cast<double>(right.size()), gr}});
  EXPECT_LT(linalg::distance2(merged.mean(), weighted_mean(all)), 1e-10);
  EXPECT_LT(linalg::max_abs(merged.cov() - weighted_covariance(all)), 1e-10);
}

TEST(MomentMatch, WeightScaleInvariance) {
  const Gaussian a(Vector{0.0}, Matrix{{1.0}});
  const Gaussian b(Vector{4.0}, Matrix{{2.0}});
  const Gaussian m1 = moment_match({{1.0, a}, {3.0, b}});
  const Gaussian m2 = moment_match({{10.0, a}, {30.0, b}});
  EXPECT_LT(linalg::distance2(m1.mean(), m2.mean()), 1e-12);
  EXPECT_LT(linalg::max_abs(m1.cov() - m2.cov()), 1e-12);
}

TEST(MomentMatch, RejectsEmptyAndNonPositiveWeights) {
  EXPECT_THROW((void)moment_match({}), ContractViolation);
  EXPECT_THROW((void)moment_match({{0.0, Gaussian(1)}}), ContractViolation);
}

}  // namespace
}  // namespace ddc::stats
