#include <ddc/stats/histogram.hpp>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>

namespace ddc::stats {
namespace {

TEST(Histogram, ConstructionValidation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, BinAssignment) {
  const Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.bin_of(0.0), 0u);
  EXPECT_EQ(h.bin_of(0.99), 0u);
  EXPECT_EQ(h.bin_of(1.0), 1u);
  EXPECT_EQ(h.bin_of(9.99), 9u);
}

TEST(Histogram, OutOfRangeMassIsClamped) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0, 1.0);
  h.add(50.0, 2.0);
  EXPECT_EQ(h.mass()[0], 1.0);
  EXPECT_EQ(h.mass()[9], 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, BinCenters) {
  const Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
  EXPECT_THROW((void)h.bin_center(10), ContractViolation);
}

TEST(Histogram, MeanOfSymmetricMassIsCentral) {
  Histogram h(0.0, 10.0, 10);
  h.add(1.2, 1.0);  // bin 1, center 1.5
  h.add(8.7, 1.0);  // bin 8, center 8.5
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, MeanOfEmptyThrows) {
  const Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.mean(), ContractViolation);
}

TEST(Histogram, MergeAddsMassBinwise) {
  Histogram a(0.0, 4.0, 4);
  Histogram b(0.0, 4.0, 4);
  a.add(0.5, 1.0);
  b.add(0.5, 2.0);
  b.add(3.5, 4.0);
  a.merge(b, 0.5);
  EXPECT_DOUBLE_EQ(a.mass()[0], 2.0);
  EXPECT_DOUBLE_EQ(a.mass()[3], 2.0);
}

TEST(Histogram, MergeRequiresIdenticalBinning) {
  Histogram a(0.0, 4.0, 4);
  const Histogram b(0.0, 4.0, 8);
  EXPECT_THROW(a.merge(b), ContractViolation);
}

TEST(Histogram, ScaleMultipliesMass) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.5, 2.0);
  h.scale(2.5);
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
  EXPECT_THROW(h.scale(-1.0), ContractViolation);
}

TEST(Histogram, L1DistanceNormalizes) {
  Histogram a(0.0, 2.0, 2);
  Histogram b(0.0, 2.0, 2);
  a.add(0.5, 1.0);
  b.add(0.5, 10.0);  // same shape, different scale
  EXPECT_NEAR(a.l1_distance(b), 0.0, 1e-12);
  b.add(1.5, 10.0);
  EXPECT_NEAR(a.l1_distance(b), 1.0, 1e-12);  // (1−0.5) + (0−0.5)
}

}  // namespace
}  // namespace ddc::stats
