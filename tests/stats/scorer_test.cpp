// ExpectedLogPdfScorer hoists the model-only invariants (Cholesky factor,
// inverse, log-det) out of expected_log_pdf. The hoist must be invisible
// at the bit level: score(a) has to reproduce the original per-pair
// formula exactly, because the protocol's determinism goldens hash every
// mantissa bit of the downstream classifications.
#include <ddc/stats/gaussian.hpp>

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include <ddc/linalg/cholesky.hpp>
#include <ddc/linalg/matrix.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::stats {
namespace {

using linalg::Matrix;
using linalg::Vector;

/// The pre-hoist formula, transcribed verbatim: everything recomputed per
/// pair, trace via the materialized product.
double reference_expected_log_pdf(const Gaussian& a, const Gaussian& b) {
  const double d = static_cast<double>(a.dim());
  const linalg::Cholesky fb = linalg::regularized_cholesky(b.cov());
  const double tr = linalg::trace(fb.inverse() * a.cov());
  const double maha = fb.mahalanobis_squared(a.mean() - b.mean());
  return -0.5 *
         (d * std::log(2.0 * std::numbers::pi) + fb.log_det() + tr + maha);
}

Gaussian random_gaussian(std::size_t d, stats::Rng& rng, bool degenerate) {
  Vector mean(d);
  for (std::size_t i = 0; i < d; ++i) mean[i] = rng.normal(0.0, 5.0);
  if (degenerate) return Gaussian::point_mass(std::move(mean));
  Matrix a(d, d);
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) a(r, c) = rng.normal();
  }
  return Gaussian(std::move(mean), a * transpose(a));
}

TEST(ExpectedLogPdfScorer, BitIdenticalToPerPairFormula) {
  stats::Rng rng(21);
  for (std::size_t d = 1; d <= 6; ++d) {
    for (int degenerate = 0; degenerate <= 1; ++degenerate) {
      const Gaussian model = random_gaussian(d, rng, degenerate != 0);
      const ExpectedLogPdfScorer scorer(model);
      for (int trial = 0; trial < 8; ++trial) {
        const Gaussian input = random_gaussian(d, rng, trial % 3 == 0);
        const double hoisted = scorer.score(input);
        const double reference = reference_expected_log_pdf(input, model);
        // Exact: same values combined in the same order.
        EXPECT_EQ(hoisted, reference)
            << "d=" << d << " degenerate=" << degenerate
            << " trial=" << trial;
        EXPECT_EQ(expected_log_pdf(input, model), reference);
      }
    }
  }
}

TEST(ExpectedLogPdfScorer, ReusableAcrossInputs) {
  // One scorer scoring many inputs equals many one-shot evaluations —
  // the E-step usage pattern.
  stats::Rng rng(22);
  const Gaussian model = random_gaussian(3, rng, false);
  const ExpectedLogPdfScorer scorer(model);
  for (int trial = 0; trial < 20; ++trial) {
    const Gaussian input = random_gaussian(3, rng, false);
    EXPECT_EQ(scorer.score(input), expected_log_pdf(input, model));
  }
}

}  // namespace
}  // namespace ddc::stats
