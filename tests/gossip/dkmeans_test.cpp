#include <ddc/gossip/dkmeans.hpp>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/sim/gossip_node.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::gossip {
namespace {

using linalg::Vector;

static_assert(sim::GossipNode<DistributedKMeansNode>);

std::vector<DistributedKMeansNode> make_network(
    const std::vector<Vector>& inputs, std::vector<Vector> centroids,
    std::size_t rounds_per_iteration) {
  std::vector<DistributedKMeansNode> nodes;
  nodes.reserve(inputs.size());
  for (const auto& v : inputs) {
    nodes.emplace_back(v, centroids, rounds_per_iteration);
  }
  return nodes;
}

TEST(DistributedKMeans, ConstructionValidation) {
  EXPECT_THROW(DistributedKMeansNode(Vector{1.0}, {}, 5), ContractViolation);
  EXPECT_THROW(DistributedKMeansNode(Vector{1.0}, {Vector{1.0, 2.0}}, 5),
               ContractViolation);
  EXPECT_THROW(DistributedKMeansNode(Vector{1.0}, {Vector{0.0}}, 0),
               ContractViolation);
}

TEST(DistributedKMeans, OwnClusterPicksNearestCentroid) {
  const DistributedKMeansNode node(Vector{4.9},
                                   {Vector{0.0}, Vector{5.0}, Vector{10.0}}, 5);
  EXPECT_EQ(node.own_cluster(), 1u);
}

TEST(DistributedKMeans, IterationAdvancesEveryRoundsPerIteration) {
  std::vector<Vector> inputs = {Vector{0.0}, Vector{1.0}};
  sim::RoundRunner<DistributedKMeansNode> runner(
      sim::Topology::complete(2),
      make_network(inputs, {Vector{0.0}, Vector{1.0}}, 4));
  runner.run_rounds(4);
  EXPECT_EQ(runner.nodes()[0].iteration(), 0u);  // boundary commits lazily
  runner.run_rounds(1);
  EXPECT_EQ(runner.nodes()[0].iteration(), 1u);
  runner.run_rounds(4);
  EXPECT_EQ(runner.nodes()[0].iteration(), 2u);
}

TEST(DistributedKMeans, RecoversTwoClusters) {
  stats::Rng rng(121);
  std::vector<Vector> inputs;
  const std::size_t n = 40;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{i % 2 == 0 ? rng.normal(0.0, 1.0)
                                       : rng.normal(30.0, 1.0)});
  }
  // Deliberately poor (but shared) initial centroids.
  sim::RoundRunner<DistributedKMeansNode> runner(
      sim::Topology::complete(n),
      make_network(inputs, {Vector{10.0}, Vector{12.0}}, 25));
  runner.run_rounds(25 * 8 + 1);  // 8 Lloyd iterations

  for (const auto& node : runner.nodes()) {
    const double lo = std::min(node.centroids()[0][0], node.centroids()[1][0]);
    const double hi = std::max(node.centroids()[0][0], node.centroids()[1][0]);
    EXPECT_NEAR(lo, 0.0, 1.0);
    EXPECT_NEAR(hi, 30.0, 1.0);
  }
}

TEST(DistributedKMeans, AllNodesShareCentroidsAtBoundaries) {
  stats::Rng rng(122);
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < 16; ++i) {
    inputs.push_back(Vector{rng.uniform(0.0, 10.0)});
  }
  sim::RoundRunner<DistributedKMeansNode> runner(
      sim::Topology::complete(16),
      make_network(inputs, {Vector{2.0}, Vector{8.0}}, 30));
  runner.run_rounds(30 * 4 + 1);
  const auto& reference = runner.nodes()[0].centroids();
  for (const auto& node : runner.nodes()) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(node.centroids()[c][0], reference[c][0], 1e-3);
    }
  }
}

TEST(DistributedKMeans, StaleMessagesAreDropped) {
  DistributedKMeansNode a(Vector{0.0}, {Vector{0.0}}, 10);
  DkmMessage stale;
  stale.iteration = 99;
  stale.clusters.push_back({Vector{100.0}, 1.0});
  a.absorb({stale});
  (void)a.prepare_message();
  // The bogus mass must not have polluted the accumulator: after one full
  // iteration the centroid is still the node's own value.
  for (int r = 0; r < 10; ++r) (void)a.prepare_message();
  EXPECT_NEAR(a.centroids()[0][0], 0.0, 1e-9);
}

}  // namespace
}  // namespace ddc::gossip
