#include <ddc/gossip/push_sum.hpp>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/gossip/network.hpp>
#include <ddc/sim/round_runner.hpp>
#include <ddc/stats/rng.hpp>

namespace ddc::gossip {
namespace {

using linalg::Vector;

TEST(PushSumNode, InitialEstimateIsOwnValue) {
  const PushSumNode node(Vector{3.0, -1.0});
  EXPECT_EQ(node.estimate(), (Vector{3.0, -1.0}));
  EXPECT_EQ(node.weight(), 1.0);
}

TEST(PushSumNode, SplitHalvesStateButKeepsEstimate) {
  PushSumNode node(Vector{4.0});
  const PushSumMessage msg = node.prepare_message();
  EXPECT_EQ(msg.weight, 0.5);
  EXPECT_EQ(msg.sum, (Vector{2.0}));
  EXPECT_EQ(node.weight(), 0.5);
  EXPECT_EQ(node.estimate(), (Vector{4.0}));  // s/w invariant under split
}

TEST(PushSumNode, AbsorbAccumulates) {
  PushSumNode a(Vector{0.0});
  PushSumNode b(Vector{8.0});
  std::vector<PushSumMessage> batch;
  batch.push_back(b.prepare_message());
  a.absorb(std::move(batch));
  EXPECT_EQ(a.weight(), 1.5);
  EXPECT_NEAR(a.estimate()[0], (0.0 * 1.0 + 8.0 * 0.5) / 1.5, 1e-12);
}

TEST(PushSumNode, DimensionMismatchThrows) {
  PushSumNode a(Vector{0.0});
  std::vector<PushSumMessage> batch = {{Vector{1.0, 2.0}, 0.5}};
  EXPECT_THROW(a.absorb(std::move(batch)), ContractViolation);
}

TEST(PushSumNode, EmptyMessagePredicate) {
  EXPECT_TRUE((PushSumMessage{Vector{}, 0.0}).empty());
  EXPECT_FALSE((PushSumMessage{Vector{1.0}, 0.5}).empty());
}

TEST(PushSum, ConvergesToGlobalAverageOnCompleteGraph) {
  stats::Rng rng(201);
  std::vector<Vector> inputs;
  Vector truth(2);
  const std::size_t n = 64;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.normal(5.0, 3.0), rng.normal(-2.0, 1.0)});
    truth += inputs.back() / static_cast<double>(n);
  }
  sim::RoundRunner<PushSumNode> runner(sim::Topology::complete(n),
                                       make_push_sum_nodes(inputs));
  runner.run_rounds(60);
  for (const auto& node : runner.nodes()) {
    EXPECT_LT(linalg::distance2(node.estimate(), truth), 1e-6);
  }
}

TEST(PushSum, ConvergesOnRingToo) {
  stats::Rng rng(202);
  std::vector<Vector> inputs;
  double truth = 0.0;
  const std::size_t n = 16;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.uniform(0.0, 10.0)});
    truth += inputs.back()[0] / static_cast<double>(n);
  }
  sim::RoundRunner<PushSumNode> runner(sim::Topology::ring(n),
                                       make_push_sum_nodes(inputs));
  runner.run_rounds(300);
  for (const auto& node : runner.nodes()) {
    EXPECT_NEAR(node.estimate()[0], truth, 1e-4);
  }
}

TEST(PushSum, MassConservationAcrossRounds) {
  stats::Rng rng(203);
  std::vector<Vector> inputs;
  for (int i = 0; i < 10; ++i) inputs.push_back(Vector{rng.normal()});
  sim::RoundRunner<PushSumNode> runner(sim::Topology::complete(10),
                                       make_push_sum_nodes(inputs));
  for (int r = 0; r < 20; ++r) {
    runner.run_round();
    double weight = 0.0;
    for (const auto& node : runner.nodes()) weight += node.weight();
    EXPECT_NEAR(weight, 10.0, 1e-9) << "round " << r;
  }
}

}  // namespace
}  // namespace ddc::gossip
