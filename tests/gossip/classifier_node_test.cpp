#include <ddc/gossip/classifier_node.hpp>

#include <gtest/gtest.h>

#include <ddc/gossip/network.hpp>
#include <ddc/sim/gossip_node.hpp>

namespace ddc::gossip {
namespace {

using linalg::Matrix;
using linalg::Vector;

// All shipped node types satisfy the runner interface.
static_assert(sim::GossipNode<GmNode>);
static_assert(sim::GossipNode<CentroidNode>);
static_assert(sim::GossipNode<GmNearestMeansNode>);
static_assert(sim::GossipNode<GmRunnallsNode>);
static_assert(sim::GossipNode<PushSumNode>);

NetworkConfig small_config(std::size_t k) {
  NetworkConfig c;
  c.k = k;
  c.quanta_per_unit = 1 << 10;
  c.seed = 9;
  return c;
}

TEST(ClassifierNode, StartsWithOwnValueOnly) {
  const auto nodes =
      make_gm_nodes({Vector{1.0, 2.0}, Vector{3.0, 4.0}}, small_config(2));
  ASSERT_EQ(nodes.size(), 2u);
  ASSERT_EQ(nodes[0].classification().size(), 1u);
  EXPECT_EQ(nodes[0].classification()[0].summary.mean(), (Vector{1.0, 2.0}));
}

TEST(ClassifierNode, PrepareMessageSplitsWeight) {
  auto nodes = make_gm_nodes({Vector{0.0, 0.0}, Vector{1.0, 1.0}},
                             small_config(2));
  const auto msg = nodes[0].prepare_message();
  ASSERT_EQ(msg.size(), 1u);
  EXPECT_EQ(msg[0].weight.quanta(), 512);
  EXPECT_EQ(nodes[0].classification()[0].weight.quanta(), 512);
}

TEST(ClassifierNode, AbsorbBatchRunsSinglePartition) {
  auto nodes = make_gm_nodes(
      {Vector{0.0, 0.0}, Vector{0.1, 0.0}, Vector{9.0, 9.0}}, small_config(2));
  std::vector<GmNode::Message> batch;
  batch.push_back(nodes[1].prepare_message());
  batch.push_back(nodes[2].prepare_message());
  nodes[0].absorb(std::move(batch));
  // 3 collections came together under k = 2: exactly one receive, one
  // partition; the two near-zero values merged.
  EXPECT_EQ(nodes[0].classifier().stats().receives, 1u);
  ASSERT_EQ(nodes[0].classification().size(), 2u);
}

TEST(ClassifierNode, CentroidVariantMergesByDistance) {
  auto nodes = make_centroid_nodes(
      {Vector{0.0}, Vector{0.5}, Vector{100.0}}, small_config(2));
  std::vector<CentroidNode::Message> batch;
  batch.push_back(nodes[1].prepare_message());
  batch.push_back(nodes[2].prepare_message());
  nodes[0].absorb(std::move(batch));
  ASSERT_EQ(nodes[0].classification().size(), 2u);
  // One collection near 0 (merged 0.0 & 0.5), one at 100.
  bool found_far = false;
  for (const auto& c : nodes[0].classification()) {
    if (c.summary[0] > 50.0) found_far = true;
  }
  EXPECT_TRUE(found_far);
}

TEST(ClassifierNode, WeightConservedAcrossExchange) {
  auto nodes =
      make_gm_nodes({Vector{0.0, 0.0}, Vector{5.0, 5.0}}, small_config(2));
  const std::int64_t before = nodes[0].classification().total_weight().quanta() +
                              nodes[1].classification().total_weight().quanta();
  auto msg = nodes[0].prepare_message();
  std::vector<GmNode::Message> batch;
  batch.push_back(std::move(msg));
  nodes[1].absorb(std::move(batch));
  const std::int64_t after = nodes[0].classification().total_weight().quanta() +
                             nodes[1].classification().total_weight().quanta();
  EXPECT_EQ(before, after);
}

TEST(NetworkBuilder, AuxTrackingPropagates) {
  NetworkConfig c = small_config(2);
  c.track_aux = true;
  const auto nodes = make_gm_nodes({Vector{0.0, 0.0}, Vector{1.0, 1.0}}, c);
  ASSERT_TRUE(nodes[1].classification()[0].aux.has_value());
  EXPECT_EQ(*nodes[1].classification()[0].aux, linalg::unit_vector(2, 1));
}

TEST(NetworkBuilder, RejectsEmptyInputs) {
  EXPECT_THROW((void)make_gm_nodes({}, small_config(2)), ContractViolation);
  EXPECT_THROW((void)make_centroid_nodes({}, small_config(2)),
               ContractViolation);
  EXPECT_THROW((void)make_push_sum_nodes({}), ContractViolation);
}

}  // namespace
}  // namespace ddc::gossip
