#include <ddc/core/collection.hpp>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>

namespace ddc::core {
namespace {

Collection<double> make(double summary, std::int64_t quanta) {
  return Collection<double>{summary, Weight::from_quanta(quanta), {}};
}

TEST(Classification, StartsEmpty) {
  const Classification<double> c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0u);
  EXPECT_TRUE(c.total_weight().is_zero());
}

TEST(Classification, AddAndAccess) {
  Classification<double> c;
  c.add(make(1.5, 10));
  c.add(make(2.5, 30));
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].summary, 1.5);
  EXPECT_EQ(c[1].weight.quanta(), 30);
  EXPECT_THROW((void)c[2], ContractViolation);
}

TEST(Classification, RejectsZeroWeightCollections) {
  Classification<double> c;
  EXPECT_THROW(c.add(make(1.0, 0)), ContractViolation);
  EXPECT_THROW(
      (Classification<double>{std::vector<Collection<double>>{make(1.0, 0)}}),
      ContractViolation);
}

TEST(Classification, TotalAndRelativeWeights) {
  Classification<double> c;
  c.add(make(0.0, 25));
  c.add(make(1.0, 75));
  EXPECT_EQ(c.total_weight().quanta(), 100);
  EXPECT_DOUBLE_EQ(c.relative_weight(0), 0.25);
  EXPECT_DOUBLE_EQ(c.relative_weight(1), 0.75);
  EXPECT_THROW((void)c.relative_weight(2), ContractViolation);
}

TEST(Classification, RelativeWeightOnEmptyThrows) {
  const Classification<double> c;
  EXPECT_THROW((void)c.relative_weight(0), ContractViolation);
}

TEST(Classification, AbsorbMovesEverythingAndEmptiesSource) {
  Classification<double> a;
  a.add(make(1.0, 10));
  Classification<double> b;
  b.add(make(2.0, 20));
  b.add(make(3.0, 30));
  a.absorb(std::move(b));
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.total_weight().quanta(), 60);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): documented
}

TEST(Classification, RangeForIteration) {
  Classification<double> c;
  c.add(make(1.0, 1));
  c.add(make(2.0, 1));
  double sum = 0.0;
  for (const auto& col : c) sum += col.summary;
  EXPECT_DOUBLE_EQ(sum, 3.0);
}

TEST(Classification, AuxVectorsTravelWithCollections) {
  Classification<double> c;
  Collection<double> col = make(1.0, 4);
  col.aux = linalg::Vector{0.5, 0.5};
  c.add(std::move(col));
  ASSERT_TRUE(c[0].aux.has_value());
  EXPECT_EQ(*c[0].aux, (linalg::Vector{0.5, 0.5}));
}

TEST(WeightedSummary, AggregatesPlainData) {
  const WeightedSummary<double> ws{2.5, 7.0};
  EXPECT_EQ(ws.summary, 2.5);
  EXPECT_EQ(ws.weight, 7.0);
}

}  // namespace
}  // namespace ddc::core
