#include <ddc/core/weight.hpp>

#include <sstream>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>

namespace ddc::core {
namespace {

TEST(Weight, DefaultIsZero) {
  const Weight w;
  EXPECT_TRUE(w.is_zero());
  EXPECT_FALSE(w.positive());
  EXPECT_EQ(w.quanta(), 0);
}

TEST(Weight, FromQuantaValidation) {
  EXPECT_EQ(Weight::from_quanta(5).quanta(), 5);
  EXPECT_THROW((void)Weight::from_quanta(-1), ContractViolation);
}

TEST(Weight, OneUsesResolution) {
  EXPECT_EQ(Weight::one(1024).quanta(), 1024);
  EXPECT_THROW((void)Weight::one(0), ContractViolation);
}

TEST(Weight, HalfOfEvenSplitsEvenly) {
  const Weight w = Weight::from_quanta(10);
  EXPECT_EQ(w.half().quanta(), 5);
  EXPECT_EQ(w.remainder_after_half().quanta(), 5);
}

TEST(Weight, HalfOfOddRoundsUpAndComplementRestores) {
  const Weight w = Weight::from_quanta(7);
  EXPECT_EQ(w.half().quanta(), 4);
  EXPECT_EQ(w.remainder_after_half().quanta(), 3);
  EXPECT_EQ(w.half() + w.remainder_after_half(), w);
}

TEST(Weight, HalfConservationForAllSmallValues) {
  // Conservation of weight under splitting, exhaustively near the
  // quantization floor where it matters most.
  for (std::int64_t q = 0; q <= 1000; ++q) {
    const Weight w = Weight::from_quanta(q);
    EXPECT_EQ((w.half() + w.remainder_after_half()).quanta(), q);
    // half() is the multiple of q closest to w/2: never off by more than
    // half a quantum.
    EXPECT_LE(std::abs(2 * w.half().quanta() - q), 1);
  }
}

TEST(Weight, SingleQuantumCannotBeSplit) {
  const Weight w = Weight::from_quanta(1);
  EXPECT_TRUE(w.is_single_quantum());
  EXPECT_EQ(w.half().quanta(), 1);
  EXPECT_TRUE(w.remainder_after_half().is_zero());
}

TEST(Weight, ValueScalesByResolution) {
  EXPECT_DOUBLE_EQ(Weight::from_quanta(512).value(1024), 0.5);
}

TEST(Weight, ArithmeticAndComparison) {
  const Weight a = Weight::from_quanta(3);
  const Weight b = Weight::from_quanta(5);
  EXPECT_EQ((a + b).quanta(), 8);
  EXPECT_EQ((b - a).quanta(), 2);
  EXPECT_LT(a, b);
  EXPECT_GE(b, a);
  EXPECT_EQ(a, Weight::from_quanta(3));
}

TEST(Weight, SubtractionCannotGoNegative) {
  Weight a = Weight::from_quanta(3);
  EXPECT_THROW(a -= Weight::from_quanta(4), ContractViolation);
}

TEST(Weight, StreamOutput) {
  std::ostringstream os;
  os << Weight::from_quanta(42);
  EXPECT_EQ(os.str(), "42q");
}

}  // namespace
}  // namespace ddc::core
