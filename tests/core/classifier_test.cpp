// Engine-mechanics tests for GenericClassifier, using a minimal 1-D mean
// summary policy and a scriptable partition policy so every engine
// behaviour can be exercised in isolation from the real instantiations.
#include <ddc/core/classifier.hpp>

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>
#include <ddc/core/policy.hpp>

namespace ddc::core {
namespace {

/// Minimal summary policy: a collection of 1-D values summarized by its
/// mean.
struct MeanPolicy {
  using Value = double;
  using Summary = double;

  static Summary val_to_summary(const Value& v) { return v; }

  static Summary merge_set(const std::vector<WeightedSummary<Summary>>& parts) {
    double total = 0.0;
    double acc = 0.0;
    for (const auto& p : parts) {
      total += p.weight;
      acc += p.weight * p.summary;
    }
    return acc / total;
  }

  static double distance(const Summary& a, const Summary& b) {
    return std::abs(a - b);
  }
};

static_assert(SummaryPolicy<MeanPolicy>);

/// Partition policy whose next grouping can be scripted by the test; falls
/// back to "merge everything into one group" when nothing is scripted.
/// State is shared through a shared_ptr so the test keeps control after
/// the policy is moved into the classifier.
struct ScriptedPartition {
  std::shared_ptr<std::vector<Grouping>> script =
      std::make_shared<std::vector<Grouping>>();

  Grouping partition(const std::vector<WeightedSummary<double>>& collections,
                     std::size_t /*k*/) {
    if (!script->empty()) {
      Grouping g = script->front();
      script->erase(script->begin());
      return g;
    }
    Grouping all(1);
    for (std::size_t i = 0; i < collections.size(); ++i) all[0].push_back(i);
    return all;
  }
};

static_assert(PartitionPolicy<ScriptedPartition, double>);

using TestClassifier = GenericClassifier<MeanPolicy, ScriptedPartition>;

ClassifierOptions options_with(std::size_t k, std::int64_t quanta,
                               bool track_aux = false, std::size_t n = 0,
                               std::size_t index = 0) {
  ClassifierOptions o;
  o.k = k;
  o.quanta_per_unit = quanta;
  o.track_aux = track_aux;
  o.num_nodes = n;
  o.node_index = index;
  return o;
}

TEST(GenericClassifier, InitialStateIsOneWholeCollection) {
  TestClassifier c(3.5, ScriptedPartition{}, options_with(2, 1000));
  ASSERT_EQ(c.classification().size(), 1u);
  EXPECT_EQ(c.classification()[0].summary, 3.5);
  EXPECT_EQ(c.classification()[0].weight.quanta(), 1000);
}

TEST(GenericClassifier, OptionValidation) {
  EXPECT_THROW(TestClassifier(0.0, ScriptedPartition{}, options_with(0, 1000)),
               ContractViolation);
  EXPECT_THROW(TestClassifier(0.0, ScriptedPartition{}, options_with(2, 0)),
               ContractViolation);
  // track_aux without node count:
  EXPECT_THROW(
      TestClassifier(0.0, ScriptedPartition{}, options_with(2, 1000, true, 0)),
      ContractViolation);
  // node_index out of range:
  EXPECT_THROW(TestClassifier(0.0, ScriptedPartition{},
                              options_with(2, 1000, true, 4, 4)),
               ContractViolation);
}

TEST(GenericClassifier, SplitHalvesWeightExactly) {
  TestClassifier c(1.0, ScriptedPartition{}, options_with(2, 1000));
  const auto msg = c.split();
  ASSERT_EQ(msg.size(), 1u);
  EXPECT_EQ(msg[0].weight.quanta(), 500);
  EXPECT_EQ(c.classification()[0].weight.quanta(), 500);
  EXPECT_EQ(msg[0].summary, 1.0);
}

TEST(GenericClassifier, SplitOfOddWeightKeepsLargerHalf) {
  TestClassifier c(1.0, ScriptedPartition{}, options_with(2, 7));
  const auto msg = c.split();
  EXPECT_EQ(c.classification()[0].weight.quanta(), 4);
  EXPECT_EQ(msg[0].weight.quanta(), 3);
}

TEST(GenericClassifier, SingleQuantumCollectionSendsNothing) {
  TestClassifier c(1.0, ScriptedPartition{}, options_with(2, 1));
  const auto msg = c.split();
  EXPECT_TRUE(msg.empty());
  EXPECT_EQ(c.classification()[0].weight.quanta(), 1);
}

TEST(GenericClassifier, RepeatedSplitsNeverLoseWeight) {
  TestClassifier c(1.0, ScriptedPartition{}, options_with(2, 999));
  std::int64_t sent = 0;
  for (int i = 0; i < 20; ++i) {
    const auto msg = c.split();
    for (const auto& col : msg) sent += col.weight.quanta();
  }
  EXPECT_EQ(sent + c.classification().total_weight().quanta(), 999);
}

TEST(GenericClassifier, ReceiveMergesIntoWeightedMean) {
  TestClassifier a(0.0, ScriptedPartition{}, options_with(2, 1000));
  TestClassifier b(6.0, ScriptedPartition{}, options_with(2, 1000));
  auto msg = b.split();  // 500 quanta of summary 6.0
  a.receive(std::move(msg));
  ASSERT_EQ(a.classification().size(), 1u);
  // Merged mean: (1000·0 + 500·6) / 1500 = 2.
  EXPECT_NEAR(a.classification()[0].summary, 2.0, 1e-12);
  EXPECT_EQ(a.classification()[0].weight.quanta(), 1500);
}

TEST(GenericClassifier, ScriptedPartitionKeepsCollectionsSeparate) {
  ScriptedPartition p;
  p.script->push_back({{0}, {1}});  // keep both
  TestClassifier a(0.0, p, options_with(2, 1000));
  TestClassifier b(6.0, ScriptedPartition{}, options_with(2, 1000));
  a.receive(b.split());
  ASSERT_EQ(a.classification().size(), 2u);
  // Singleton groups keep their summaries bit-exact.
  EXPECT_EQ(a.classification()[0].summary, 0.0);
  EXPECT_EQ(a.classification()[1].summary, 6.0);
}

TEST(GenericClassifier, InvalidGroupingFromPolicyIsRejected) {
  ScriptedPartition p;
  p.script->push_back({{0}});  // misses index 1
  TestClassifier a(0.0, p, options_with(2, 1000));
  TestClassifier b(6.0, ScriptedPartition{}, options_with(2, 1000));
  EXPECT_THROW(a.receive(b.split()), ContractViolation);
}

TEST(GenericClassifier, OverwideGroupingFromPolicyIsRejected) {
  ScriptedPartition p;
  p.script->push_back({{0}, {1}});  // 2 groups but k = 1
  TestClassifier a(0.0, p, options_with(1, 1000));
  TestClassifier b(6.0, ScriptedPartition{}, options_with(1, 1000));
  EXPECT_THROW(a.receive(b.split()), ContractViolation);
}

TEST(GenericClassifier, QuantumSingletonGroupIsRehomedToNearest) {
  // Node a holds two collections (via a scripted keep-separate receive),
  // then receives a 1-quantum collection that the policy tries to leave
  // alone; the engine must merge it with the *nearest* group (summary 6).
  ScriptedPartition p;
  p.script->push_back({{0}, {1}});        // first receive: keep 0 and 6 apart
  p.script->push_back({{0}, {1}, {2}});   // second: try to isolate the quantum
  TestClassifier a(0.0, p, options_with(3, 1000));
  TestClassifier b(6.0, ScriptedPartition{}, options_with(3, 1000));
  a.receive(b.split());

  // Hand-craft a 1-quantum incoming collection with summary 5.0.
  Classification<double> tiny;
  tiny.add(Collection<double>{5.0, Weight::from_quanta(1), {}});
  a.receive(std::move(tiny));

  ASSERT_EQ(a.classification().size(), 2u);
  EXPECT_EQ(a.stats().singleton_rehomes, 1u);
  // The 6.0 group absorbed the quantum: new mean slightly below 6.
  const double merged = (500.0 * 6.0 + 1.0 * 5.0) / 501.0;
  bool found = false;
  for (const auto& col : a.classification()) {
    if (std::abs(col.summary - merged) < 1e-12) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(GenericClassifier, QuantumSingletonAllowedWhenItIsTheOnlyGroup) {
  // With a single group there is nowhere to re-home; the engine must not
  // loop or throw.
  TestClassifier a(0.0, ScriptedPartition{}, options_with(2, 1000));
  Classification<double> tiny;
  tiny.add(Collection<double>{5.0, Weight::from_quanta(1), {}});
  EXPECT_NO_THROW(a.receive(std::move(tiny)));
  EXPECT_EQ(a.classification().size(), 1u);
}

TEST(GenericClassifier, AuxVectorStartsAsUnitVector) {
  TestClassifier c(2.0, ScriptedPartition{}, options_with(2, 1000, true, 3, 1));
  const auto& aux = c.classification()[0].aux;
  ASSERT_TRUE(aux.has_value());
  EXPECT_EQ(*aux, linalg::unit_vector(3, 1));
}

TEST(GenericClassifier, AuxVectorTracksSplitRatiosExactly) {
  TestClassifier c(2.0, ScriptedPartition{}, options_with(2, 7, true, 2, 0));
  const auto msg = c.split();  // keeps 4/7, sends 3/7
  EXPECT_NEAR((*c.classification()[0].aux)[0], 4.0 / 7.0, 1e-15);
  EXPECT_NEAR((*msg[0].aux)[0], 3.0 / 7.0, 1e-15);
}

TEST(GenericClassifier, AuxVectorAddsOnMerge) {
  TestClassifier a(0.0, ScriptedPartition{}, options_with(2, 1000, true, 2, 0));
  TestClassifier b(6.0, ScriptedPartition{}, options_with(2, 1000, true, 2, 1));
  a.receive(b.split());
  const auto& aux = *a.classification()[0].aux;
  EXPECT_NEAR(aux[0], 1.0, 1e-15);
  EXPECT_NEAR(aux[1], 0.5, 1e-15);
  // Lemma 1, Eq. 2: ‖aux‖₁ = weight (in units of whole values).
  EXPECT_NEAR(linalg::norm1(aux),
              a.classification()[0].weight.value(1000), 1e-12);
}

TEST(GenericClassifier, StatsCountOperations) {
  TestClassifier a(0.0, ScriptedPartition{}, options_with(2, 1000));
  TestClassifier b(6.0, ScriptedPartition{}, options_with(2, 1000));
  (void)a.split();
  a.receive(b.split());
  EXPECT_EQ(a.stats().splits, 1u);
  EXPECT_EQ(a.stats().receives, 1u);
  EXPECT_EQ(a.stats().collections_merged, 2u);
}

TEST(IsValidGrouping, AcceptsExactPartitions) {
  EXPECT_TRUE(is_valid_grouping({{0, 2}, {1}}, 3));
  EXPECT_TRUE(is_valid_grouping({{0}}, 1));
}

TEST(IsValidGrouping, RejectsBadShapes) {
  EXPECT_FALSE(is_valid_grouping({{0}, {}}, 1));       // empty group
  EXPECT_FALSE(is_valid_grouping({{0, 0}}, 1));        // duplicate
  EXPECT_FALSE(is_valid_grouping({{0, 1}}, 3));        // missing index
  EXPECT_FALSE(is_valid_grouping({{0, 3}}, 2));        // out of range
}

}  // namespace
}  // namespace ddc::core
