#include <ddc/wire/framing.hpp>

#include <gtest/gtest.h>

#include <ddc/wire/serialize.hpp>

namespace ddc::wire {
namespace {

std::vector<std::byte> sample_payload() {
  return {std::byte{0xde}, std::byte{0xad}, std::byte{0xbe}, std::byte{0xef}};
}

TEST(Framing, GossipRoundtripCarriesPayload) {
  const auto payload = sample_payload();
  const auto bytes = encode_frame(FrameKind::gossip, 7, 42, payload);
  const Frame frame = decode_frame(bytes);
  EXPECT_EQ(frame.kind, FrameKind::gossip);
  EXPECT_EQ(frame.sender, 7u);
  EXPECT_EQ(frame.seq, 42u);
  ASSERT_EQ(frame.payload.size(), payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(frame.payload[i], payload[i]);
  }
}

TEST(Framing, ProbeAndAckRoundtripEmpty) {
  for (const auto kind : {FrameKind::probe, FrameKind::probe_ack}) {
    const auto bytes = encode_frame(kind, 3, 9);
    const Frame frame = decode_frame(bytes);
    EXPECT_EQ(frame.kind, kind);
    EXPECT_EQ(frame.sender, 3u);
    EXPECT_EQ(frame.seq, 9u);
    EXPECT_TRUE(frame.payload.empty());
  }
}

TEST(Framing, GossipPayloadMayBeEmpty) {
  const auto bytes = encode_frame(FrameKind::gossip, 0, 1);
  EXPECT_TRUE(decode_frame(bytes).payload.empty());
}

TEST(Framing, BadMagicRejected) {
  auto bytes = encode_frame(FrameKind::gossip, 1, 1, sample_payload());
  bytes[0] ^= std::byte{0xff};
  EXPECT_THROW((void)decode_frame(bytes), DecodeError);
}

TEST(Framing, UnsupportedVersionRejected) {
  auto bytes = encode_frame(FrameKind::gossip, 1, 1, sample_payload());
  // The version rides in the magic's top byte (little-endian offset 3).
  bytes[3] = std::byte{99};
  EXPECT_THROW((void)decode_frame(bytes), DecodeError);
}

TEST(Framing, UnknownKindRejected) {
  auto bytes = encode_frame(FrameKind::gossip, 1, 1, sample_payload());
  bytes[4] = std::byte{0};
  EXPECT_THROW((void)decode_frame(bytes), DecodeError);
  bytes[4] = std::byte{4};
  EXPECT_THROW((void)decode_frame(bytes), DecodeError);
}

TEST(Framing, ProbeWithPayloadRejected) {
  auto probe = encode_frame(FrameKind::probe, 1, 1);
  probe.push_back(std::byte{0x55});
  EXPECT_THROW((void)decode_frame(probe), DecodeError);
}

TEST(Framing, EveryStrictPrefixOfProbeRejected) {
  const auto bytes = encode_frame(FrameKind::probe_ack, 12, 34);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        (void)decode_frame(std::span<const std::byte>(bytes.data(), len)),
        DecodeError)
        << "prefix length " << len;
  }
}

TEST(Framing, PayloadBorrowsFromInputBuffer) {
  const auto payload = sample_payload();
  const auto bytes = encode_frame(FrameKind::gossip, 2, 5, payload);
  const Frame frame = decode_frame(bytes);
  ASSERT_GE(frame.payload.data(), bytes.data());
  EXPECT_EQ(frame.payload.data() + frame.payload.size(),
            bytes.data() + bytes.size());
}

TEST(Framing, EnvelopeDoesNotValidateGossipPayload) {
  // Garbage gossip payloads pass the envelope — the message codec is
  // responsible for rejecting them.
  const auto bytes = encode_frame(FrameKind::gossip, 1, 1, sample_payload());
  const Frame frame = decode_frame(bytes);
  EXPECT_THROW(
      (void)decode_classification<stats::Gaussian>(frame.payload),
      DecodeError);
}

}  // namespace
}  // namespace ddc::wire
