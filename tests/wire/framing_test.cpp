#include <ddc/wire/framing.hpp>

#include <gtest/gtest.h>

#include <ddc/wire/serialize.hpp>

namespace ddc::wire {
namespace {

std::vector<std::byte> sample_payload() {
  return {std::byte{0xde}, std::byte{0xad}, std::byte{0xbe}, std::byte{0xef}};
}

TEST(Framing, GossipRoundtripCarriesPayload) {
  const auto payload = sample_payload();
  const auto bytes = encode_frame(FrameKind::gossip, 7, 42, payload);
  const Frame frame = decode_frame(bytes);
  EXPECT_EQ(frame.kind, FrameKind::gossip);
  EXPECT_EQ(frame.sender, 7u);
  EXPECT_EQ(frame.seq, 42u);
  ASSERT_EQ(frame.payload.size(), payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(frame.payload[i], payload[i]);
  }
}

TEST(Framing, ProbeAndAckRoundtripEmpty) {
  for (const auto kind : {FrameKind::probe, FrameKind::probe_ack}) {
    const auto bytes = encode_frame(kind, 3, 9);
    const Frame frame = decode_frame(bytes);
    EXPECT_EQ(frame.kind, kind);
    EXPECT_EQ(frame.sender, 3u);
    EXPECT_EQ(frame.seq, 9u);
    EXPECT_TRUE(frame.payload.empty());
  }
}

TEST(Framing, GossipPayloadMayBeEmpty) {
  const auto bytes = encode_frame(FrameKind::gossip, 0, 1);
  EXPECT_TRUE(decode_frame(bytes).payload.empty());
}

TEST(Framing, BadMagicRejected) {
  auto bytes = encode_frame(FrameKind::gossip, 1, 1, sample_payload());
  bytes[0] ^= std::byte{0xff};
  EXPECT_THROW((void)decode_frame(bytes), DecodeError);
}

TEST(Framing, UnsupportedVersionRejected) {
  auto bytes = encode_frame(FrameKind::gossip, 1, 1, sample_payload());
  // The version rides in the magic's top byte (little-endian offset 3).
  bytes[3] = std::byte{99};
  EXPECT_THROW((void)decode_frame(bytes), DecodeError);
}

TEST(Framing, UnknownKindRejected) {
  auto bytes = encode_frame(FrameKind::gossip, 1, 1, sample_payload());
  bytes[4] = std::byte{0};
  EXPECT_THROW((void)decode_frame(bytes), DecodeError);
  bytes[4] = std::byte{6};  // first kind beyond batch_ack
  EXPECT_THROW((void)decode_frame(bytes), DecodeError);
}

TEST(Framing, ProbeWithPayloadRejected) {
  auto probe = encode_frame(FrameKind::probe, 1, 1);
  probe.push_back(std::byte{0x55});
  EXPECT_THROW((void)decode_frame(probe), DecodeError);
}

TEST(Framing, EveryStrictPrefixOfProbeRejected) {
  const auto bytes = encode_frame(FrameKind::probe_ack, 12, 34);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        (void)decode_frame(std::span<const std::byte>(bytes.data(), len)),
        DecodeError)
        << "prefix length " << len;
  }
}

TEST(Framing, PayloadBorrowsFromInputBuffer) {
  const auto payload = sample_payload();
  const auto bytes = encode_frame(FrameKind::gossip, 2, 5, payload);
  const Frame frame = decode_frame(bytes);
  ASSERT_GE(frame.payload.data(), bytes.data());
  EXPECT_EQ(frame.payload.data() + frame.payload.size(),
            bytes.data() + bytes.size());
}

std::vector<std::byte> sample_batch_payload() {
  const auto a = sample_payload();
  const std::vector<std::byte> b{std::byte{0x01}};
  const std::vector<BatchRecord> records = {
      {12, 305, BatchTag::forward, a},
      {305, 12, BatchTag::reply, b},
      {7, 8, BatchTag::forward, {}},  // empty payload is legal
  };
  return encode_batch(41, 2, 4, records);
}

TEST(Framing, BatchRoundtrip) {
  const auto payload = sample_batch_payload();
  const Batch batch = decode_batch(payload);
  EXPECT_EQ(batch.round, 41u);
  EXPECT_EQ(batch.shard, 2u);
  EXPECT_EQ(batch.num_shards, 4u);
  ASSERT_EQ(batch.records.size(), 3u);
  EXPECT_EQ(batch.records[0].src, 12u);
  EXPECT_EQ(batch.records[0].dst, 305u);
  EXPECT_EQ(batch.records[0].tag, BatchTag::forward);
  ASSERT_EQ(batch.records[0].payload.size(), 4u);
  EXPECT_EQ(batch.records[1].tag, BatchTag::reply);
  EXPECT_TRUE(batch.records[2].payload.empty());
  // Re-encoding the decoded view reproduces the bytes exactly (the
  // bijection the fuzz harness leans on).
  EXPECT_EQ(encode_batch(batch.round, batch.shard, batch.num_shards,
                         batch.records),
            payload);
}

TEST(Framing, BatchFrameCarriesPayload) {
  // Unlike probes, batch frames carry payloads through the envelope.
  const auto payload = sample_batch_payload();
  const auto bytes = encode_frame(FrameKind::batch, 2, 42, payload);
  const Frame frame = decode_frame(bytes);
  EXPECT_EQ(frame.kind, FrameKind::batch);
  EXPECT_EQ(frame.payload.size(), payload.size());
  const Batch batch = decode_batch(frame.payload);
  EXPECT_EQ(batch.records.size(), 3u);
}

TEST(Framing, EmptyBatchIsTheBarrierToken) {
  const auto payload = encode_batch(7, 0, 2, {});
  const Batch batch = decode_batch(payload);
  EXPECT_EQ(batch.round, 7u);
  EXPECT_TRUE(batch.records.empty());
}

TEST(Framing, BatchRejectsBadShape) {
  // shard id out of range
  EXPECT_THROW((void)decode_batch(encode_batch(1, 4, 4, {})), DecodeError);
  // zero shards
  EXPECT_THROW((void)decode_batch(encode_batch(1, 0, 0, {})), DecodeError);
  // unknown record tag
  auto payload = sample_batch_payload();
  // round u64 + three 1-byte varints, then record 0's src/dst varints
  // (1 + 2 bytes — 305 needs two) put the tag at offset 14.
  ASSERT_EQ(static_cast<std::uint8_t>(payload[14]), 0u);
  payload[14] = std::byte{9};
  EXPECT_THROW((void)decode_batch(payload), DecodeError);
  // trailing garbage
  auto trailing = sample_batch_payload();
  trailing.push_back(std::byte{0});
  EXPECT_THROW((void)decode_batch(trailing), DecodeError);
}

TEST(Framing, BatchAckRoundtrip) {
  const auto payload = encode_batch_ack(123456789);
  EXPECT_EQ(decode_batch_ack(payload), 123456789u);
  auto trailing = payload;
  trailing.push_back(std::byte{0});
  EXPECT_THROW((void)decode_batch_ack(trailing), DecodeError);
  EXPECT_THROW((void)decode_batch_ack({}), DecodeError);
}

TEST(Framing, EnvelopeDoesNotValidateGossipPayload) {
  // Garbage gossip payloads pass the envelope — the message codec is
  // responsible for rejecting them.
  const auto bytes = encode_frame(FrameKind::gossip, 1, 1, sample_payload());
  const Frame frame = decode_frame(bytes);
  EXPECT_THROW(
      (void)decode_classification<stats::Gaussian>(frame.payload),
      DecodeError);
}

}  // namespace
}  // namespace ddc::wire
