#include <ddc/wire/serialize.hpp>

#include <gtest/gtest.h>

#include <ddc/stats/rng.hpp>
#include <ddc/summaries/histogram_summary.hpp>

namespace ddc::wire {
namespace {

using core::Classification;
using core::Collection;
using core::Weight;
using linalg::Matrix;
using linalg::Vector;
using stats::Gaussian;

Classification<Gaussian> sample_gaussian_classification(bool with_aux) {
  Classification<Gaussian> c;
  Collection<Gaussian> a{Gaussian(Vector{1.0, -2.0},
                                  Matrix{{2.0, 0.3}, {0.3, 1.0}}),
                         Weight::from_quanta(12345), {}};
  Collection<Gaussian> b{Gaussian::point_mass(Vector{7.0, 8.0}),
                         Weight::from_quanta(1), {}};
  if (with_aux) {
    a.aux = Vector{0.25, 0.75, 0.0};
    b.aux = Vector{0.0, 0.0, 1.0};
  }
  c.add(std::move(a));
  c.add(std::move(b));
  return c;
}

TEST(Serialize, GaussianClassificationRoundtrip) {
  const auto original = sample_gaussian_classification(false);
  const auto bytes = encode_classification(original);
  const auto decoded = decode_classification<Gaussian>(bytes);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].summary, original[0].summary);
  EXPECT_EQ(decoded[0].weight, original[0].weight);
  EXPECT_EQ(decoded[1].summary, original[1].summary);
  EXPECT_FALSE(decoded[0].aux.has_value());
}

TEST(Serialize, AuxVectorsTravelOnlyOnRequest) {
  const auto original = sample_gaussian_classification(true);
  const auto without = encode_classification(original, false);
  const auto with = encode_classification(original, true);
  EXPECT_GT(with.size(), without.size());

  const auto decoded = decode_classification<Gaussian>(with);
  ASSERT_TRUE(decoded[0].aux.has_value());
  EXPECT_EQ(*decoded[0].aux, (Vector{0.25, 0.75, 0.0}));
  EXPECT_FALSE(decode_classification<Gaussian>(without)[0].aux.has_value());
}

TEST(Serialize, CentroidClassificationRoundtrip) {
  Classification<Vector> c;
  c.add(Collection<Vector>{Vector{1.5, 2.5, -3.5}, Weight::from_quanta(99), {}});
  const auto bytes = encode_classification(c);
  const auto decoded = decode_classification<Vector>(bytes);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].summary, c[0].summary);
  EXPECT_EQ(decoded[0].weight.quanta(), 99);
}

TEST(Serialize, HistogramClassificationRoundtrip) {
  using Policy = summaries::HistogramPolicy<summaries::DefaultBinning>;
  Classification<stats::Histogram> c;
  stats::Histogram h = Policy::val_to_summary(3.0);
  h.add(-7.0, 2.5);
  c.add(Collection<stats::Histogram>{std::move(h), Weight::from_quanta(7), {}});
  const auto bytes = encode_classification(c);
  const auto decoded = decode_classification<stats::Histogram>(bytes);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].summary, c[0].summary);
}

TEST(Serialize, PushSumRoundtrip) {
  const gossip::PushSumMessage msg{Vector{1.0, -2.0, 3.0}, 0.625};
  const auto bytes = encode_push_sum(msg);
  const auto decoded = decode_push_sum(bytes);
  EXPECT_EQ(decoded.sum, msg.sum);
  EXPECT_EQ(decoded.weight, msg.weight);
}

TEST(Serialize, PeekTypeIdentifiesFrames) {
  EXPECT_EQ(peek_type(encode_push_sum({Vector{1.0}, 0.5})),
            MessageType::push_sum);
  EXPECT_EQ(peek_type(encode_classification(sample_gaussian_classification(false))),
            MessageType::gaussian_classification);
}

TEST(Serialize, WrongTypeRejected) {
  const auto bytes = encode_push_sum({Vector{1.0}, 0.5});
  EXPECT_THROW((void)decode_classification<Gaussian>(bytes), DecodeError);
}

TEST(Serialize, BadMagicRejected) {
  auto bytes = encode_push_sum({Vector{1.0}, 0.5});
  bytes[0] = std::byte{0xff};
  EXPECT_THROW((void)decode_push_sum(bytes), DecodeError);
}

TEST(Serialize, WrongVersionRejected) {
  auto bytes = encode_push_sum({Vector{1.0}, 0.5});
  bytes[3] = std::byte{9};  // version byte
  EXPECT_THROW((void)decode_push_sum(bytes), DecodeError);
}

TEST(Serialize, TruncationAnywhereRejected) {
  const auto bytes = encode_classification(sample_gaussian_classification(true), true);
  // Chop the buffer at every length; decoding must throw, never crash or
  // return garbage.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::byte> prefix(bytes.data(), len);
    EXPECT_THROW((void)decode_classification<Gaussian>(prefix), DecodeError)
        << "prefix length " << len;
  }
  EXPECT_NO_THROW((void)decode_classification<Gaussian>(bytes));
}

TEST(Serialize, TrailingGarbageRejected) {
  auto bytes = encode_push_sum({Vector{1.0}, 0.5});
  bytes.push_back(std::byte{0});
  EXPECT_THROW((void)decode_push_sum(bytes), DecodeError);
}

TEST(Serialize, NonPositiveWeightRejected) {
  Classification<Vector> c;
  c.add(Collection<Vector>{Vector{1.0}, Weight::from_quanta(1), {}});
  auto bytes = encode_classification(c);
  // The weight i64 sits right after magic(4) + type(1) + count(1 varint).
  for (std::size_t i = 0; i < 8; ++i) bytes[6 + i] = std::byte{0};
  EXPECT_THROW((void)decode_classification<Vector>(bytes), DecodeError);
}

TEST(Serialize, NonFiniteValuesRejected) {
  const gossip::PushSumMessage msg{Vector{1.0}, 0.5};
  auto bytes = encode_push_sum(msg);
  // Overwrite the sum's f64 (after magic 4 + type 1 + dim varint 1) with
  // a NaN bit pattern.
  for (std::size_t i = 0; i < 8; ++i) bytes[6 + i] = std::byte{0xff};
  EXPECT_THROW((void)decode_push_sum(bytes), DecodeError);
}

TEST(Serialize, AbsurdDimensionWithoutPayloadRejected) {
  // A frame claiming a huge Gaussian dimension with no payload must fail
  // via the bounds checks (resource-exhaustion guard), not crash or hang.
  Encoder enc;
  encode_header(enc, MessageType::gaussian_classification);
  enc.put_varint(1);          // one collection
  enc.put_i64(5);             // weight
  enc.put_varint(1 << 20);    // absurd dimension, no payload follows
  EXPECT_THROW((void)decode_classification<Gaussian>(enc.bytes()), DecodeError);
}

TEST(Serialize, MessageSizeIndependentOfNetworkSize) {
  // The paper's bandwidth claim, at byte granularity: a k-collection
  // Gaussian message in R^d costs a fixed number of bytes regardless of n.
  const auto size_for = [](std::int64_t quanta) {
    Classification<Gaussian> c;
    c.add(Collection<Gaussian>{Gaussian(2), Weight::from_quanta(quanta), {}});
    c.add(Collection<Gaussian>{Gaussian(2), Weight::from_quanta(quanta), {}});
    return encode_classification(c).size();
  };
  EXPECT_EQ(size_for(100), size_for(1'000'000'000));
}

}  // namespace
}  // namespace ddc::wire
