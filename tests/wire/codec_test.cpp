#include <ddc/wire/codec.hpp>

#include <cmath>

#include <gtest/gtest.h>

namespace ddc::wire {
namespace {

TEST(Codec, FixedWidthRoundtrip) {
  Encoder enc;
  enc.put_u8(0xab);
  enc.put_u32(0xdeadbeef);
  enc.put_u64(0x0123456789abcdefULL);
  enc.put_i64(-42);
  enc.put_f64(3.14159);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 0xab);
  EXPECT_EQ(dec.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(dec.get_i64(), -42);
  EXPECT_EQ(dec.get_f64(), 3.14159);
  EXPECT_TRUE(dec.done());
}

TEST(Codec, LittleEndianLayout) {
  Encoder enc;
  enc.put_u32(0x01020304);
  EXPECT_EQ(static_cast<std::uint8_t>(enc.bytes()[0]), 0x04);
  EXPECT_EQ(static_cast<std::uint8_t>(enc.bytes()[3]), 0x01);
}

TEST(Codec, VarintRoundtripAcrossMagnitudes) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL,
                          16384ULL, 1ULL << 32, ~0ULL}) {
    Encoder enc;
    enc.put_varint(v);
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.get_varint(), v) << v;
    EXPECT_TRUE(dec.done());
  }
}

TEST(Codec, VarintIsCompactForSmallValues) {
  Encoder enc;
  enc.put_varint(7);
  EXPECT_EQ(enc.size(), 1u);
  enc.put_varint(300);
  EXPECT_EQ(enc.size(), 3u);  // +2 bytes
}

TEST(Codec, TruncatedReadThrows) {
  Encoder enc;
  enc.put_u32(5);
  Decoder dec(enc.bytes());
  EXPECT_THROW((void)dec.get_u64(), DecodeError);
}

TEST(Codec, NonCanonicalVarintRejected) {
  const std::byte padded[] = {std::byte{0x80}, std::byte{0x00}};
  Decoder dec(padded);
  EXPECT_THROW((void)dec.get_varint(), DecodeError);
}

TEST(Codec, OverlongVarintRejected) {
  std::vector<std::byte> bytes(10, std::byte{0xff});
  Decoder dec(bytes);
  EXPECT_THROW((void)dec.get_varint(), DecodeError);
}

TEST(Codec, ExpectDoneCatchesTrailingBytes) {
  Encoder enc;
  enc.put_u8(1);
  enc.put_u8(2);
  Decoder dec(enc.bytes());
  (void)dec.get_u8();
  EXPECT_THROW(dec.expect_done(), DecodeError);
  (void)dec.get_u8();
  EXPECT_NO_THROW(dec.expect_done());
}

TEST(Codec, SpecialDoublesSurviveBitCopy) {
  Encoder enc;
  enc.put_f64(-0.0);
  enc.put_f64(1e-308);
  Decoder dec(enc.bytes());
  const double neg_zero = dec.get_f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(dec.get_f64(), 1e-308);
}

}  // namespace
}  // namespace ddc::wire
