// Truncation and corruption robustness — the attack surface once
// payloads arrive off the network (ISSUE 2). Every strict prefix of a
// valid encoding must throw DecodeError: decoding is deterministic and
// prefix-based, so a truncated buffer either runs out mid-field or
// leaves the decoder short of expect_done — it can never silently
// produce a classification or over-allocate. Bit flips must decode or
// throw DecodeError, never crash or throw anything else.
#include <vector>

#include <gtest/gtest.h>

#include <ddc/wire/framing.hpp>
#include <ddc/wire/serialize.hpp>

namespace ddc::wire {
namespace {

using core::Classification;
using core::Collection;
using core::Weight;
using linalg::Matrix;
using linalg::Vector;
using stats::Gaussian;

Classification<Gaussian> sample_gaussian() {
  Classification<Gaussian> c;
  c.add(Collection<Gaussian>{
      Gaussian(Vector{0.5, -1.5}, Matrix{{1.5, 0.2}, {0.2, 0.75}}),
      Weight::from_quanta(4096), Vector{0.5, 0.5}});
  c.add(Collection<Gaussian>{Gaussian::point_mass(Vector{3.0, 4.0}),
                             Weight::from_quanta(77), {}});
  return c;
}

Classification<Vector> sample_centroid() {
  Classification<Vector> c;
  c.add(Collection<Vector>{Vector{1.0, 2.0, 3.0}, Weight::from_quanta(10), {}});
  c.add(Collection<Vector>{Vector{-9.0, 0.0, 0.5}, Weight::from_quanta(3), {}});
  return c;
}

template <typename Fn>
void expect_graceful(Fn decode_call) {
  try {
    decode_call();
  } catch (const DecodeError&) {
    // Expected for malformed input; anything else escapes and fails.
  }
}

template <typename DecodeFn>
void assert_every_prefix_throws(const std::vector<std::byte>& bytes,
                                DecodeFn decode) {
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::byte> prefix(bytes.data(), len);
    EXPECT_THROW((void)decode(prefix), DecodeError)
        << "prefix length " << len << " of " << bytes.size();
  }
}

TEST(WireRobustness, GaussianPrefixesAllThrow) {
  const auto bytes = encode_classification(sample_gaussian(), true);
  assert_every_prefix_throws(bytes, [](std::span<const std::byte> b) {
    return decode_classification<Gaussian>(b);
  });
}

TEST(WireRobustness, CentroidPrefixesAllThrow) {
  const auto bytes = encode_classification(sample_centroid());
  assert_every_prefix_throws(bytes, [](std::span<const std::byte> b) {
    return decode_classification<Vector>(b);
  });
}

TEST(WireRobustness, FramedGossipPrefixesAllThrow) {
  // The full networked path: envelope + payload. A prefix either breaks
  // the envelope or truncates the payload inside it.
  const auto payload = encode_classification(sample_gaussian());
  const auto bytes = encode_frame(FrameKind::gossip, 5, 17, payload);
  assert_every_prefix_throws(bytes, [](std::span<const std::byte> b) {
    const Frame frame = decode_frame(b);
    return decode_classification<Gaussian>(frame.payload);
  });
}

TEST(WireRobustness, EveryBitFlipIsGraceful) {
  const auto bytes = encode_classification(sample_gaussian(), true);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = bytes;
      mutated[i] ^= std::byte{static_cast<unsigned char>(1u << bit)};
      expect_graceful(
          [&] { (void)decode_classification<Gaussian>(mutated); });
    }
  }
}

TEST(WireRobustness, EveryBitFlipOfFrameIsGraceful) {
  const auto payload = encode_classification(sample_centroid());
  const auto bytes = encode_frame(FrameKind::gossip, 1, 2, payload);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = bytes;
      mutated[i] ^= std::byte{static_cast<unsigned char>(1u << bit)};
      expect_graceful([&] {
        const Frame frame = decode_frame(mutated);
        (void)decode_classification<Vector>(frame.payload);
      });
    }
  }
}

std::vector<std::byte> sample_batch() {
  const auto gm = encode_classification(sample_gaussian());
  const auto cent = encode_classification(sample_centroid());
  const std::vector<BatchRecord> records = {
      {3, 900, BatchTag::forward, gm},
      {900, 3, BatchTag::reply, cent},
      {17, 18, BatchTag::forward, {}},
  };
  return encode_batch(9, 1, 3, records);
}

TEST(WireRobustness, BatchPrefixesAllThrow) {
  assert_every_prefix_throws(sample_batch(), [](std::span<const std::byte> b) {
    return decode_batch(b);
  });
}

TEST(WireRobustness, FramedBatchPrefixesAllThrow) {
  // The full cluster path: envelope + batch + per-record payloads.
  const auto bytes = encode_frame(FrameKind::batch, 1, 10, sample_batch());
  assert_every_prefix_throws(bytes, [](std::span<const std::byte> b) {
    return decode_batch(decode_frame(b).payload);
  });
}

TEST(WireRobustness, EveryBitFlipOfBatchFrameIsGraceful) {
  const auto bytes = encode_frame(FrameKind::batch, 1, 10, sample_batch());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = bytes;
      mutated[i] ^= std::byte{static_cast<unsigned char>(1u << bit)};
      expect_graceful([&] {
        const Frame frame = decode_frame(mutated);
        if (frame.kind != FrameKind::batch) return;
        const Batch batch = decode_batch(frame.payload);
        // Walk every record payload through the message codec, as the
        // shard engine does on delivery.
        for (const BatchRecord& rec : batch.records) {
          if (rec.tag == BatchTag::forward) {
            (void)decode_classification<Gaussian>(rec.payload);
          } else {
            (void)decode_classification<Vector>(rec.payload);
          }
        }
      });
    }
  }
}

TEST(WireRobustness, BatchCountCorruptionCannotOverallocate) {
  // Blow the record-count varint up to a huge value: check_count must
  // reject it before anything is reserved.
  const auto bytes = sample_batch();
  // round u64 + shard varint (1 byte) + num_shards varint (1 byte).
  const std::size_t count_offset = 10;
  std::vector<std::byte> corrupted(bytes.begin(),
                                   bytes.begin() + count_offset);
  for (int i = 0; i < 9; ++i) corrupted.push_back(std::byte{0xff});
  corrupted.push_back(std::byte{0x7f});
  corrupted.insert(corrupted.end(), bytes.begin() + count_offset + 1,
                   bytes.end());
  EXPECT_THROW((void)decode_batch(corrupted), DecodeError);
}

TEST(WireRobustness, BatchRecordLengthCorruptionCannotOverrun) {
  // Corrupt a record's payload-length varint to claim more bytes than
  // the frame holds.
  const std::vector<BatchRecord> records = {
      {1, 2, BatchTag::forward, encode_classification(sample_centroid())},
  };
  auto bytes = encode_batch(0, 0, 2, records);
  // Header: round (8) + shard (1) + num_shards (1) + count (1); record:
  // src (1) + dst (1) + tag (1), then the length varint.
  const std::size_t len_offset = 14;
  ASSERT_LT(len_offset, bytes.size());
  std::vector<std::byte> corrupted(bytes.begin(), bytes.begin() + len_offset);
  for (int i = 0; i < 9; ++i) corrupted.push_back(std::byte{0xff});
  corrupted.push_back(std::byte{0x7f});
  corrupted.insert(corrupted.end(), bytes.begin() + len_offset + 1,
                   bytes.end());
  EXPECT_THROW((void)decode_batch(corrupted), DecodeError);
}

TEST(WireRobustness, LengthFieldCorruptionCannotOverallocate) {
  // Blow the collection-count varint up to a huge value: the decoder's
  // capacity check must reject it instead of reserving terabytes.
  auto bytes = encode_classification(sample_centroid());
  // Magic is 4 bytes, message type 1 byte; the count varint follows.
  const std::size_t count_offset = 5;
  ASSERT_LT(count_offset, bytes.size());
  std::vector<std::byte> corrupted(bytes.begin(),
                                   bytes.begin() + count_offset);
  for (int i = 0; i < 9; ++i) corrupted.push_back(std::byte{0xff});
  corrupted.push_back(std::byte{0x7f});
  corrupted.insert(corrupted.end(), bytes.begin() + count_offset + 1,
                   bytes.end());
  EXPECT_THROW((void)decode_classification<Vector>(corrupted), DecodeError);
}

}  // namespace
}  // namespace ddc::wire
