// Decoder fuzzing: random and mutated byte buffers must either decode or
// throw DecodeError — never crash, hang, or throw anything else. A sensor
// node cannot let a corrupt radio packet take the protocol down.
#include <vector>

#include <gtest/gtest.h>

#include <ddc/stats/rng.hpp>
#include <ddc/wire/serialize.hpp>

namespace ddc::wire {
namespace {

using core::Classification;
using core::Collection;
using core::Weight;
using linalg::Matrix;
using linalg::Vector;
using stats::Gaussian;

template <typename Fn>
void expect_graceful(Fn decode_call) {
  try {
    decode_call();
  } catch (const DecodeError&) {
    // expected for malformed input
  }
  // Any other exception type (or a crash) fails the test via gtest.
}

TEST(DecoderFuzz, RandomBytesNeverEscapeDecodeError) {
  stats::Rng rng(501);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::byte> bytes(rng.uniform_index(120));
    for (auto& b : bytes) {
      b = static_cast<std::byte>(rng.uniform_index(256));
    }
    expect_graceful([&] { (void)decode_classification<Gaussian>(bytes); });
    expect_graceful([&] { (void)decode_classification<Vector>(bytes); });
    expect_graceful([&] { (void)decode_push_sum(bytes); });
    expect_graceful([&] { (void)peek_type(bytes); });
  }
}

TEST(DecoderFuzz, SingleByteMutationsOfValidFrames) {
  Classification<Gaussian> c;
  c.add(Collection<Gaussian>{Gaussian(Vector{1.0, 2.0},
                                      Matrix{{1.0, 0.2}, {0.2, 2.0}}),
                             Weight::from_quanta(777), Vector{0.5, 0.25}});
  c.add(Collection<Gaussian>{Gaussian::point_mass(Vector{-3.0, 4.0}),
                             Weight::from_quanta(9), {}});
  const auto valid = encode_classification(c, /*include_aux=*/true);

  stats::Rng rng(502);
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = valid;
    const std::size_t pos = rng.uniform_index(mutated.size());
    mutated[pos] = static_cast<std::byte>(rng.uniform_index(256));
    expect_graceful([&] { (void)decode_classification<Gaussian>(mutated); });
  }
}

TEST(DecoderFuzz, RandomTruncationsOfValidFrames) {
  Classification<Vector> c;
  for (int i = 0; i < 5; ++i) {
    c.add(Collection<Vector>{Vector{1.0 * i, 2.0 * i, 3.0 * i},
                             Weight::from_quanta(10 + i), {}});
  }
  const auto valid = encode_classification(c);
  stats::Rng rng(503);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t len = rng.uniform_index(valid.size());
    const std::span<const std::byte> prefix(valid.data(), len);
    EXPECT_THROW((void)decode_classification<Vector>(prefix), DecodeError);
  }
}

TEST(DecoderFuzz, ValidFramesStillDecodeAfterFuzzRuns) {
  // Sanity: the fuzzing above exercised shared state-free code; a valid
  // frame must still round-trip.
  Classification<Vector> c;
  c.add(Collection<Vector>{Vector{42.0}, Weight::from_quanta(5), {}});
  const auto decoded = decode_classification<Vector>(encode_classification(c));
  EXPECT_EQ(decoded[0].summary, (Vector{42.0}));
}

}  // namespace
}  // namespace ddc::wire
