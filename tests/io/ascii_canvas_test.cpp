#include <ddc/io/ascii_canvas.hpp>

#include <sstream>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>

namespace ddc::io {
namespace {

using linalg::Matrix;
using linalg::Vector;
using stats::Gaussian;

TEST(AsciiCanvas, ConstructionValidation) {
  EXPECT_THROW(AsciiCanvas(1.0, 1.0, 0.0, 1.0), ContractViolation);
  EXPECT_THROW(AsciiCanvas(0.0, 1.0, 0.0, 1.0, 1, 10), ContractViolation);
}

TEST(AsciiCanvas, PlotsLandInTheRightCells) {
  AsciiCanvas canvas(0.0, 10.0, 0.0, 10.0, 10, 10);
  canvas.plot(0.01, 0.01, 'a');   // bottom-left
  canvas.plot(9.99, 9.99, 'b');   // top-right
  canvas.plot(5.0, 5.0, 'c');     // middle
  EXPECT_EQ(canvas.at(0, 9), 'a');
  EXPECT_EQ(canvas.at(9, 0), 'b');
  EXPECT_EQ(canvas.at(5, 4), 'c');
}

TEST(AsciiCanvas, OutOfWindowPointsAreClipped) {
  AsciiCanvas canvas(0.0, 1.0, 0.0, 1.0, 4, 4);
  canvas.plot(-5.0, 0.5, 'z');
  canvas.plot(0.5, 99.0, 'z');
  std::ostringstream os;
  canvas.render(os);
  EXPECT_EQ(os.str().find('z'), std::string::npos);
}

TEST(AsciiCanvas, FitCoversAllPoints) {
  const std::vector<Vector> points = {Vector{-3.0, 2.0}, Vector{7.0, -1.0},
                                      Vector{0.0, 5.0}};
  AsciiCanvas canvas = AsciiCanvas::fit(points, 40, 12);
  canvas.plot_points(points, '*');
  std::size_t stars = 0;
  for (std::size_t r = 0; r < canvas.rows(); ++r) {
    for (std::size_t c = 0; c < canvas.cols(); ++c) {
      stars += canvas.at(c, r) == '*' ? 1 : 0;
    }
  }
  EXPECT_EQ(stars, 3u);
}

TEST(AsciiCanvas, FitRejectsEmptyOrNon2D) {
  EXPECT_THROW((void)AsciiCanvas::fit({}), ContractViolation);
  EXPECT_THROW((void)AsciiCanvas::fit({Vector{1.0}}), ContractViolation);
}

TEST(AsciiCanvas, GaussianEllipseSurroundsTheMean) {
  AsciiCanvas canvas(-5.0, 5.0, -5.0, 5.0, 40, 20);
  canvas.draw_gaussian(Gaussian(Vector{0.0, 0.0}, Matrix::identity(2)), 2.0,
                       'o');
  // Marks must appear left and right of center, none at the center itself.
  std::size_t marks = 0;
  for (std::size_t r = 0; r < canvas.rows(); ++r) {
    for (std::size_t c = 0; c < canvas.cols(); ++c) {
      marks += canvas.at(c, r) == 'o' ? 1 : 0;
    }
  }
  EXPECT_GT(marks, 10u);
  EXPECT_EQ(canvas.at(20, 10), ' ');  // center cell stays empty
}

TEST(AsciiCanvas, PointMassRendersAsSingletonX) {
  AsciiCanvas canvas(-1.0, 1.0, -1.0, 1.0, 20, 10);
  canvas.draw_gaussian(Gaussian::point_mass(Vector{0.0, 0.0}));
  std::ostringstream os;
  canvas.render(os);
  EXPECT_NE(os.str().find('x'), std::string::npos);
}

TEST(AsciiCanvas, RenderHasFrameAndLabels) {
  AsciiCanvas canvas(0.0, 2.0, 0.0, 4.0, 8, 3);
  std::ostringstream os;
  canvas.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("+--------+"), std::string::npos);
  EXPECT_NE(out.find("y=4"), std::string::npos);
  EXPECT_NE(out.find("x=0"), std::string::npos);
  EXPECT_NE(out.find("x=2"), std::string::npos);
}

}  // namespace
}  // namespace ddc::io
