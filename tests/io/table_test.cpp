#include <ddc/io/table.hpp>

#include <sstream>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>

namespace ddc::io {
namespace {

TEST(Table, RequiresNonEmptyHeader) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, RowWidthMustMatchHeader) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), ContractViolation);
}

TEST(Table, AlignedOutputContainsAllCells) {
  Table t({"name", "value"}, 2);
  t.add_row({std::string("x"), 1.5});
  t.add_row({std::string("long-name"), 22.0});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("22.00"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, IntegerCellsPrintWithoutDecimals) {
  Table t({"n"});
  t.add_row({static_cast<long long>(42)});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("42"), std::string::npos);
  EXPECT_EQ(os.str().find("42.0"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"}, 1);
  t.add_row({std::string("x"), 2.5});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,2.5\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"a"});
  t.add_row({std::string("hello, \"world\"")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\n\"hello, \"\"world\"\"\"\n");
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  t.add_row({1.0, 2.0, 3.0});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace ddc::io
