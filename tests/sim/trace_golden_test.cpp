// Golden test pinning the TraceRecorder CSV export byte for byte — the
// format `ddcsim --trace` emits and external analysis scripts parse.
//
// The run must be fully deterministic across platforms, so it uses
// round-robin selection (consumes no randomness; std distributions are
// implementation-defined) and no loss or crashes.
#include <ddc/sim/trace.hpp>

#include <sstream>

#include <gtest/gtest.h>

#include <ddc/sim/round_runner.hpp>

namespace ddc::sim {
namespace {

struct TokenNode {
  using Message = struct M {
    int tokens = 0;
    [[nodiscard]] bool empty() const noexcept { return tokens == 0; }
  };
  Message prepare_message() { return {1}; }
  void absorb(std::vector<Message>) {}
};

TEST(TraceGolden, CsvExportIsPinned) {
  TraceRecorder rec;
  RoundRunnerOptions options;
  options.selection = NeighborSelection::round_robin;
  RoundRunner<TokenNode> runner(Topology::complete(3),
                                std::vector<TokenNode>(3), options);
  runner.set_trace(&rec);
  runner.run_rounds(2);

  std::ostringstream os;
  rec.write_csv(os);
  // Round-robin on the complete 3-graph: round 0 sends along each node's
  // first neighbor (0→1, 1→0, 2→0), round 1 along the second
  // (0→2, 1→2, 2→1); each send is delivered immediately after.
  const std::string expected =
      "round,event,from,to,payload\n"
      "0,send,0,1,1\n"
      "0,deliver,0,1,1\n"
      "0,send,1,0,1\n"
      "0,deliver,1,0,1\n"
      "0,send,2,0,1\n"
      "0,deliver,2,0,1\n"
      "1,send,0,2,1\n"
      "1,deliver,0,2,1\n"
      "1,send,1,2,1\n"
      "1,deliver,1,2,1\n"
      "1,send,2,1,1\n"
      "1,deliver,2,1,1\n";
  EXPECT_EQ(os.str(), expected);
}

}  // namespace
}  // namespace ddc::sim
