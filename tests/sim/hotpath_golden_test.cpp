// Seed-era golden coverage for the optimized hot-path kernels.
//
// The partition/EM/moment-matching rewrites (see DESIGN.md "Hot paths")
// promise BIT-IDENTICAL results to the pre-optimization code. This test
// pins that promise to golden hashes generated from the unoptimized
// kernels: for 3 seeds × {centroid, GM} × {lossless, loss 0.1} it runs a
// full RoundRunner simulation (and, lossless only — the async engine has
// reliable channels by construction — an AsyncRunner one), wire-encodes
// every node's final classification, and compares an FNV-1a digest of all
// the bytes against the recorded golden. A single flipped mantissa bit
// anywhere in any node's summary changes the digest.
//
// To regenerate after an INTENTIONAL output change (one that a human has
// signed off on as semantically justified — never for an "optimization"):
//   DDC_PRINT_GOLDEN=1 ./build/tests/sim_tests
//       --gtest_filter='HotpathGolden.*' 2>&1 | grep GOLDEN
// (one command line; wrapped here for width)
#include <ddc/gossip/runners.hpp>
#include <ddc/wire/serialize.hpp>

#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ddc::sim {
namespace {

/// FNV-1a 64-bit over a byte string.
class Digest {
 public:
  void absorb(const std::vector<std::byte>& bytes) {
    for (const std::byte b : bytes) {
      hash_ ^= static_cast<std::uint64_t>(b);
      hash_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::string hex() const {
    std::ostringstream os;
    os << std::hex << std::setfill('0') << std::setw(16) << hash_;
    return os.str();
  }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// Bimodal 2-D inputs (the workload shape used throughout the benches).
std::vector<linalg::Vector> bimodal_inputs(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<linalg::Vector> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(linalg::Vector{
        i % 2 == 0 ? rng.normal(0.0, 1.0) : rng.normal(25.0, 2.0),
        rng.normal(0.0, 1.0)});
  }
  return inputs;
}

template <typename Runner>
std::string digest_nodes(const Runner& runner) {
  Digest digest;
  for (const auto& node : runner.nodes()) {
    digest.absorb(wire::encode_classification(node.classification()));
  }
  return digest.hex();
}

constexpr std::size_t kNodes = 48;
constexpr std::size_t kRounds = 20;
constexpr double kAsyncHorizon = 20.0;

std::string round_digest(const std::string& protocol, std::uint64_t seed,
                         double loss) {
  const auto inputs = bimodal_inputs(kNodes, seed);
  gossip::NetworkConfig net;
  net.k = 2;
  net.seed = seed + 100;
  RoundRunnerOptions options;
  options.seed = seed + 200;
  options.message_loss_probability = loss;
  if (protocol == "gm") {
    auto runner = make_gm_round_runner(Topology::complete(kNodes), inputs, net,
                                       options);
    runner.run_rounds(kRounds);
    return digest_nodes(runner);
  }
  auto runner = make_centroid_round_runner(Topology::complete(kNodes), inputs,
                                           net, options);
  runner.run_rounds(kRounds);
  return digest_nodes(runner);
}

std::string async_digest(const std::string& protocol, std::uint64_t seed) {
  const auto inputs = bimodal_inputs(kNodes, seed);
  gossip::NetworkConfig net;
  net.k = 2;
  net.seed = seed + 100;
  AsyncRunnerOptions options;
  options.seed = seed + 200;
  if (protocol == "gm") {
    auto runner = make_gm_async_runner(Topology::complete(kNodes), inputs, net,
                                       options);
    runner.run_until(kAsyncHorizon);
    return digest_nodes(runner);
  }
  auto runner = make_centroid_async_runner(Topology::complete(kNodes), inputs,
                                           net, options);
  runner.run_until(kAsyncHorizon);
  return digest_nodes(runner);
}

struct GoldenCase {
  std::string engine;  // "round" | "async"
  std::string protocol;
  std::uint64_t seed;
  double loss;
  std::string golden;
};

// Generated from the pre-optimization kernels (naive O(m³) greedy
// partition, per-pair Cholesky EM scoring, temporary-allocating moment
// matching) at the commit that introduced this test.
std::vector<GoldenCase> golden_cases() {
  return {
      {"round", "gm", 1, 0.0, "6055fd077ad9a9ef"},
      {"round", "gm", 2, 0.0, "d8fe69448631ef74"},
      {"round", "gm", 3, 0.0, "f71ad5b5196f8776"},
      {"round", "gm", 1, 0.1, "535151d5bcb56bba"},
      {"round", "gm", 2, 0.1, "5d9b322cbea93ab0"},
      {"round", "gm", 3, 0.1, "90e8d5d733dd122a"},
      {"round", "centroid", 1, 0.0, "61f655bd7e72c10a"},
      {"round", "centroid", 2, 0.0, "078630f474f0d966"},
      {"round", "centroid", 3, 0.0, "2f6f56671c36f325"},
      {"round", "centroid", 1, 0.1, "8ad96b37d10c2df5"},
      {"round", "centroid", 2, 0.1, "5fdd07fb370f7546"},
      {"round", "centroid", 3, 0.1, "b601cef9f135454f"},
      {"async", "gm", 1, 0.0, "7a3cddc5f0823b0b"},
      {"async", "gm", 2, 0.0, "c2c60bddeb24deee"},
      {"async", "gm", 3, 0.0, "b28faf546751a506"},
      {"async", "centroid", 1, 0.0, "cc7c36eefda3a84c"},
      {"async", "centroid", 2, 0.0, "33fc89d2ff326cf5"},
      {"async", "centroid", 3, 0.0, "f7e0eb6f6c519a56"},
  };
}

TEST(HotpathGolden, BitIdenticalToSeedEraKernels) {
  const bool print = std::getenv("DDC_PRINT_GOLDEN") != nullptr;
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.engine + "/" + c.protocol + "/seed=" +
                 std::to_string(c.seed) + "/loss=" + std::to_string(c.loss));
    const std::string actual = c.engine == "round"
                                   ? round_digest(c.protocol, c.seed, c.loss)
                                   : async_digest(c.protocol, c.seed);
    if (print) {
      std::ostringstream os;
      os << "GOLDEN " << c.engine << ' ' << c.protocol << ' ' << c.seed << ' '
         << c.loss << ' ' << actual;
      std::cout << os.str() << '\n';
      continue;
    }
    EXPECT_EQ(actual, c.golden);
  }
}

}  // namespace
}  // namespace ddc::sim
