// Runner mechanics, tested with a minimal counting node so the protocol
// layer stays out of the picture.
#include <ddc/sim/async_runner.hpp>
#include <ddc/sim/round_runner.hpp>

#include <numeric>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>

namespace ddc::sim {
namespace {

/// Message carrying one "token"; nodes count sends and received tokens.
struct TokenMessage {
  int tokens = 0;
  [[nodiscard]] bool empty() const noexcept { return tokens == 0; }
};

struct CountingNode {
  using Message = TokenMessage;

  int sent = 0;
  int received_tokens = 0;
  int batches = 0;
  bool mute = false;  // when true, sends empty messages

  Message prepare_message() {
    if (mute) return {};
    ++sent;
    return {1};
  }

  void absorb(std::vector<Message> batch) {
    ++batches;
    for (const auto& m : batch) received_tokens += m.tokens;
  }
};

static_assert(GossipNode<CountingNode>);

TEST(RoundRunner, RequiresOneNodePerVertex) {
  EXPECT_THROW(RoundRunner<CountingNode>(Topology::complete(3),
                                         std::vector<CountingNode>(2)),
               ContractViolation);
}

TEST(RoundRunner, EveryLiveNodeSendsOncePerRound) {
  RoundRunner<CountingNode> runner(Topology::complete(4),
                                   std::vector<CountingNode>(4));
  runner.run_rounds(3);
  EXPECT_EQ(runner.round(), 3u);
  int total_sent = 0;
  int total_received = 0;
  for (const auto& n : runner.nodes()) {
    EXPECT_EQ(n.sent, 3);
    total_sent += n.sent;
    total_received += n.received_tokens;
  }
  // No crashes → every token lands somewhere.
  EXPECT_EQ(total_sent, total_received);
}

TEST(RoundRunner, EmptyMessagesAreNotDelivered) {
  std::vector<CountingNode> nodes(3);
  for (auto& n : nodes) n.mute = true;
  RoundRunner<CountingNode> runner(Topology::complete(3), std::move(nodes));
  runner.run_rounds(5);
  for (const auto& n : runner.nodes()) {
    EXPECT_EQ(n.batches, 0);
    EXPECT_EQ(n.received_tokens, 0);
  }
}

TEST(RoundRunner, RoundRobinCyclesThroughAllNeighbors) {
  // On a complete 4-graph, after 3 rounds of round-robin each node has
  // sent exactly one token to each neighbor, so each node received 3.
  RoundRunnerOptions options;
  options.selection = NeighborSelection::round_robin;
  RoundRunner<CountingNode> runner(Topology::complete(4),
                                   std::vector<CountingNode>(4), options);
  runner.run_rounds(3);
  for (const auto& n : runner.nodes()) EXPECT_EQ(n.received_tokens, 3);
}

TEST(RoundRunner, BatchedDeliveryGroupsARoundsMessages) {
  // Star topology, everyone (including the center) sends to a neighbor;
  // the leaves all target the center, which must absorb them in ONE batch.
  RoundRunner<CountingNode> runner(Topology::star(5),
                                   std::vector<CountingNode>(5));
  runner.run_round();
  EXPECT_EQ(runner.nodes()[0].batches, 1);
  EXPECT_EQ(runner.nodes()[0].received_tokens, 4);
}

TEST(RoundRunner, CrashesReduceAliveCountAndStopActivity) {
  RoundRunnerOptions options;
  options.crash_probability = 0.5;
  options.seed = 7;
  RoundRunner<CountingNode> runner(Topology::complete(10),
                                   std::vector<CountingNode>(10), options);
  runner.run_rounds(6);
  EXPECT_LT(runner.alive_count(), 10u);
  // With p = 0.5 over 6 rounds, some node crashed in round 1 w.h.p.; its
  // send count must have frozen below 6.
  bool someone_stopped_early = false;
  for (NodeId i = 0; i < 10; ++i) {
    if (!runner.alive(i) && runner.nodes()[i].sent < 6) {
      someone_stopped_early = true;
    }
  }
  EXPECT_TRUE(someone_stopped_early);
}

TEST(RoundRunner, CrashFreeRunsKeepEveryoneAlive) {
  RoundRunner<CountingNode> runner(Topology::ring(6),
                                   std::vector<CountingNode>(6));
  runner.run_rounds(10);
  EXPECT_EQ(runner.alive_count(), 6u);
}

TEST(RoundRunner, PullPatternDeliversRepliesToInitiators) {
  RoundRunnerOptions options;
  options.pattern = GossipPattern::pull;
  RoundRunner<CountingNode> runner(Topology::complete(4),
                                   std::vector<CountingNode>(4), options);
  runner.run_rounds(3);
  int total_sent = 0;
  int total_received = 0;
  for (const auto& n : runner.nodes()) {
    // Every node polls one neighbor per round and gets one reply back.
    EXPECT_EQ(n.received_tokens, 3);
    total_sent += n.sent;
    total_received += n.received_tokens;
  }
  EXPECT_EQ(total_sent, total_received);
}

TEST(RoundRunner, PullOnStarDrawsFromTheCenter) {
  RoundRunnerOptions options;
  options.pattern = GossipPattern::pull;
  RoundRunner<CountingNode> runner(Topology::star(5),
                                   std::vector<CountingNode>(5), options);
  runner.run_round();
  // Every leaf pulls from the center, so the center's state was split once
  // per leaf; the center's own pull drew one token from some leaf.
  EXPECT_EQ(runner.nodes()[0].sent, 4);
  EXPECT_EQ(runner.nodes()[0].received_tokens, 1);
  int leaf_sent = 0;
  for (NodeId i = 1; i < 5; ++i) {
    EXPECT_EQ(runner.nodes()[i].received_tokens, 1);
    leaf_sent += runner.nodes()[i].sent;
  }
  EXPECT_EQ(leaf_sent, 1);
}

TEST(RoundRunner, ParallelismDoesNotChangeTokenFlow) {
  for (const GossipPattern pattern :
       {GossipPattern::push, GossipPattern::pull, GossipPattern::push_pull}) {
    RoundRunnerOptions sequential;
    sequential.pattern = pattern;
    sequential.seed = 9;
    RoundRunnerOptions parallel = sequential;
    parallel.parallelism = 4;
    RoundRunner<CountingNode> a(Topology::complete(6),
                                std::vector<CountingNode>(6), sequential);
    RoundRunner<CountingNode> b(Topology::complete(6),
                                std::vector<CountingNode>(6), parallel);
    a.run_rounds(8);
    b.run_rounds(8);
    for (NodeId i = 0; i < 6; ++i) {
      EXPECT_EQ(a.nodes()[i].sent, b.nodes()[i].sent);
      EXPECT_EQ(a.nodes()[i].received_tokens, b.nodes()[i].received_tokens);
      EXPECT_EQ(a.nodes()[i].batches, b.nodes()[i].batches);
    }
  }
}

TEST(RoundRunner, SameSeedSameExecution) {
  RoundRunnerOptions options;
  options.seed = 33;
  RoundRunner<CountingNode> a(Topology::complete(5),
                              std::vector<CountingNode>(5), options);
  RoundRunner<CountingNode> b(Topology::complete(5),
                              std::vector<CountingNode>(5), options);
  a.run_rounds(10);
  b.run_rounds(10);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(a.nodes()[i].received_tokens, b.nodes()[i].received_tokens);
  }
}

TEST(AsyncRunner, DeliversMessagesOverTime) {
  AsyncRunnerOptions options;
  options.seed = 5;
  AsyncRunner<CountingNode> runner(Topology::complete(4),
                                   std::vector<CountingNode>(4), options);
  runner.run_until(50.0);
  EXPECT_GT(runner.messages_delivered(), 50u);
  int sent = 0;
  for (const auto& n : runner.nodes()) sent += n.sent;
  // Everything sent early enough has been delivered (delays ≤ 2).
  EXPECT_GE(runner.messages_delivered() + 16u, static_cast<unsigned>(sent));
}

TEST(AsyncRunner, AllTokensConservedAfterQuiescence) {
  AsyncRunnerOptions options;
  options.seed = 6;
  AsyncRunner<CountingNode> runner(Topology::ring(5),
                                   std::vector<CountingNode>(5), options);
  runner.run_until(30.0);
  // Let in-flight messages land: tokens received ≤ tokens sent, and the
  // difference is bounded by in-flight messages (≤ sends in the last 2s,
  // which is at most 5 nodes × ~4 ticks).
  int sent = 0;
  int received = 0;
  for (const auto& n : runner.nodes()) {
    sent += n.sent;
    received += n.received_tokens;
  }
  EXPECT_LE(received, sent);
  EXPECT_GE(received, sent - 40);
}

TEST(AsyncRunner, DeterministicGivenSeed) {
  AsyncRunnerOptions options;
  options.seed = 11;
  AsyncRunner<CountingNode> a(Topology::complete(3),
                              std::vector<CountingNode>(3), options);
  AsyncRunner<CountingNode> b(Topology::complete(3),
                              std::vector<CountingNode>(3), options);
  a.run_until(20.0);
  b.run_until(20.0);
  EXPECT_EQ(a.messages_delivered(), b.messages_delivered());
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(a.nodes()[i].received_tokens, b.nodes()[i].received_tokens);
  }
}

TEST(AsyncRunner, ValidatesOptions) {
  AsyncRunnerOptions options;
  options.min_delay = 3.0;
  options.max_delay = 1.0;
  EXPECT_THROW(AsyncRunner<CountingNode>(Topology::complete(2),
                                         std::vector<CountingNode>(2), options),
               ContractViolation);
}

}  // namespace
}  // namespace ddc::sim
