#include <ddc/sim/event_queue.hpp>

#include <vector>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>

namespace ddc::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  const EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0.0);
  EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule(2.0, [&] {
    q.schedule_after(1.5, [&] { fired_at = q.now(); });
  });
  q.run(100);
  EXPECT_EQ(fired_at, 3.5);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run(1);
  EXPECT_THROW(q.schedule(4.0, [] {}), ContractViolation);
  EXPECT_THROW(q.schedule_after(-1.0, [] {}), ContractViolation);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  q.schedule(5.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(3.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 3.0);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run_until(10.0), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) q.schedule_after(1.0, chain);
  };
  q.schedule(0.0, chain);
  q.run_until(100.0);
  EXPECT_EQ(count, 10);
}

TEST(EventQueue, StepOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.step(), ContractViolation);
}

TEST(EventQueue, RunBoundsEventCount) {
  EventQueue q;
  // Self-perpetuating event: run(n) must stop after n.
  std::function<void()> loop = [&] { q.schedule_after(1.0, loop); };
  q.schedule(0.0, loop);
  EXPECT_EQ(q.run(25), 25u);
  EXPECT_EQ(q.executed(), 25u);
}

}  // namespace
}  // namespace ddc::sim
