#include <ddc/sim/trace.hpp>

#include <sstream>

#include <gtest/gtest.h>

#include <ddc/sim/round_runner.hpp>

namespace ddc::sim {
namespace {

/// Same counting node as runner_test, local copy to keep the suites
/// independent.
struct ProbeNode {
  using Message = struct M {
    int tokens = 0;
    [[nodiscard]] bool empty() const noexcept { return tokens == 0; }
  };
  int sent = 0;
  Message prepare_message() {
    ++sent;
    return {1};
  }
  void absorb(std::vector<Message>) {}
};

TEST(TraceRecorder, CountsAndPayloadAccumulate) {
  TraceRecorder rec;
  rec.record({0, TraceEventType::send, 1, 2, 3});
  rec.record({0, TraceEventType::deliver, 1, 2, 3});
  rec.record({1, TraceEventType::send, 2, 1, 4});
  rec.record({1, TraceEventType::loss, 2, 1, 4});
  EXPECT_EQ(rec.count(TraceEventType::send), 2u);
  EXPECT_EQ(rec.count(TraceEventType::loss), 1u);
  EXPECT_EQ(rec.total_payload_sent(), 7u);
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorder, CsvFormat) {
  TraceRecorder rec;
  rec.record({2, TraceEventType::crash, 5, 5, 0});
  std::ostringstream os;
  rec.write_csv(os);
  EXPECT_EQ(os.str(), "round,event,from,to,payload\n2,crash,5,5,0\n");
}

TEST(TraceRecorder, EventTypeNames) {
  EXPECT_EQ(to_string(TraceEventType::send), "send");
  EXPECT_EQ(to_string(TraceEventType::deliver), "deliver");
  EXPECT_EQ(to_string(TraceEventType::loss), "loss");
  EXPECT_EQ(to_string(TraceEventType::dead_target), "dead_target");
  EXPECT_EQ(to_string(TraceEventType::crash), "crash");
  EXPECT_EQ(to_string(TraceEventType::no_live_neighbor), "no_live_neighbor");
}

TEST(RoundRunnerTrace, RecordsOneSendAndDeliverPerNodePerRound) {
  TraceRecorder rec;
  RoundRunner<ProbeNode> runner(Topology::complete(4),
                                std::vector<ProbeNode>(4));
  runner.set_trace(&rec);
  runner.run_rounds(3);
  EXPECT_EQ(rec.count(TraceEventType::send), 12u);
  EXPECT_EQ(rec.count(TraceEventType::deliver), 12u);
  EXPECT_EQ(rec.count(TraceEventType::loss), 0u);
  EXPECT_EQ(rec.count(TraceEventType::crash), 0u);
}

TEST(RoundRunnerTrace, LossEventsMatchProbability) {
  TraceRecorder rec;
  RoundRunnerOptions options;
  options.message_loss_probability = 0.5;
  options.seed = 9;
  RoundRunner<ProbeNode> runner(Topology::complete(10),
                                std::vector<ProbeNode>(10), options);
  runner.set_trace(&rec);
  runner.run_rounds(100);
  const double loss_rate =
      static_cast<double>(rec.count(TraceEventType::loss)) /
      static_cast<double>(rec.count(TraceEventType::send));
  EXPECT_NEAR(loss_rate, 0.5, 0.05);
  EXPECT_EQ(rec.count(TraceEventType::send),
            rec.count(TraceEventType::deliver) +
                rec.count(TraceEventType::loss));
}

TEST(RoundRunnerTrace, CrashEventsRecordedOnce) {
  TraceRecorder rec;
  RoundRunnerOptions options;
  options.crash_probability = 0.2;
  options.seed = 10;
  RoundRunner<ProbeNode> runner(Topology::complete(12),
                                std::vector<ProbeNode>(12), options);
  runner.set_trace(&rec);
  runner.run_rounds(30);
  EXPECT_EQ(rec.count(TraceEventType::crash), 12u - runner.alive_count());
}

TEST(RoundRunnerTrace, DeadTargetOnlyUnderDropPolicy) {
  for (const auto policy :
       {CrashSendPolicy::avoid_crashed, CrashSendPolicy::drop_at_crashed}) {
    TraceRecorder rec;
    RoundRunnerOptions options;
    options.crash_probability = 0.3;
    options.crash_send_policy = policy;
    options.seed = 11;
    RoundRunner<ProbeNode> runner(Topology::complete(10),
                                  std::vector<ProbeNode>(10), options);
    runner.set_trace(&rec);
    runner.run_rounds(20);
    if (policy == CrashSendPolicy::avoid_crashed) {
      EXPECT_EQ(rec.count(TraceEventType::dead_target), 0u);
    } else {
      EXPECT_GT(rec.count(TraceEventType::dead_target), 0u);
    }
  }
}

TEST(RoundRunnerTrace, PushPullDoublesTraffic) {
  TraceRecorder rec;
  RoundRunnerOptions options;
  options.pattern = GossipPattern::push_pull;
  RoundRunner<ProbeNode> runner(Topology::complete(6),
                                std::vector<ProbeNode>(6), options);
  runner.set_trace(&rec);
  runner.run_rounds(5);
  EXPECT_EQ(rec.count(TraceEventType::send), 2u * 6u * 5u);
}

}  // namespace
}  // namespace ddc::sim
