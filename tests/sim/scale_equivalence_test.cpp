// Golden equivalence suite: the scale engine and the EngineConfig facade
// against the classic runners.
//
// Three bit-identity contracts are pinned here, all by comparing FNV-1a
// digests of every node's wire-encoded final classification:
//
//   1. SoaRoundEngine ≡ RoundRunner for the supported protocols, across
//      3 seeds × {centroid, gm} × {lossless, loss 0.1}, plus crash
//      models, gossip patterns, selection policies, thread counts and
//      topology families — the struct-of-arrays pools, message arena and
//      scratch-classifier rehydration must not change a single mantissa
//      bit relative to one-object-per-node execution.
//   2. EngineConfig-built classic runners ≡ hand-assembled classic
//      runners, for both {round, async} modes — the unified config
//      object is a pure re-expression, not a new code path.
//   3. The streaming metrics equal their materializing counterparts.
//
// A 100k-node smoke test keeps the scale path honest under the normal
// ctest timeout (the full 10⁶ benchmark lives in bench/bench_scale).
#include <ddc/gossip/runners.hpp>
#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/metrics/streaming.hpp>
#include <ddc/wire/serialize.hpp>

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ddc::sim {
namespace {

/// FNV-1a 64-bit over a byte string (same digest as hotpath_golden_test).
class Digest {
 public:
  void absorb(const std::vector<std::byte>& bytes) {
    for (const std::byte b : bytes) {
      hash_ ^= static_cast<std::uint64_t>(b);
      hash_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::string hex() const {
    std::ostringstream os;
    os << std::hex << std::setfill('0') << std::setw(16) << hash_;
    return os.str();
  }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

std::vector<linalg::Vector> bimodal_inputs(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<linalg::Vector> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(linalg::Vector{
        i % 2 == 0 ? rng.normal(0.0, 1.0) : rng.normal(25.0, 2.0),
        rng.normal(0.0, 1.0)});
  }
  return inputs;
}

template <typename Runner>
std::string digest_nodes(const Runner& runner) {
  Digest digest;
  for (const auto& node : runner.nodes()) {
    digest.absorb(wire::encode_classification(node.classification()));
  }
  return digest.hex();
}

template <typename Engine>
std::string digest_engine(const Engine& engine) {
  Digest digest;
  engine.for_each_classification([&](std::size_t, const auto& classification) {
    digest.absorb(wire::encode_classification(classification));
  });
  return digest.hex();
}

constexpr std::size_t kGmNodes = 48;
constexpr std::size_t kCentroidNodes = 200;
constexpr std::size_t kRounds = 20;

/// The shared configuration of one equivalence case. Seeds follow the
/// hotpath-golden convention (protocol seed+100, environment seed+200).
EngineConfig base_config(std::size_t nodes, std::uint64_t seed) {
  EngineConfig config;
  config.topology.family = TopologyFamily::complete;
  config.topology.nodes = nodes;
  config.k = 2;
  config.protocol_seed = seed + 100;
  config.seed = seed + 200;
  return config;
}

/// Classic runner assembled the historical way (NetworkConfig + options
/// structs) — the reference the facade and the scale engine must match.
template <typename Factory>
std::string classic_round_digest(Factory&& factory, std::size_t nodes,
                                 const EngineConfig& config) {
  const auto inputs = bimodal_inputs(nodes, config.protocol_seed - 100);
  gossip::NetworkConfig net;
  net.k = config.k;
  net.quanta_per_unit = config.quanta_per_unit;
  net.seed = config.protocol_seed;
  auto runner =
      factory(Topology::complete(nodes), inputs, net, config.round_options());
  runner.run_rounds(kRounds);
  return digest_nodes(runner);
}

// ---------------------------------------------------------------------------
// Contract 1+2 (round mode): classic hand-built ≡ classic via
// EngineConfig ≡ SoaRoundEngine, 3 seeds × {lossless, loss 0.1}.
// ---------------------------------------------------------------------------

TEST(ScaleEquivalence, CentroidRoundBitIdentical) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    for (const double loss : {0.0, 0.1}) {
      EngineConfig config = base_config(kCentroidNodes, seed);
      config.faults.message_loss_probability = loss;
      const auto inputs = bimodal_inputs(kCentroidNodes, seed);
      const std::string classic = classic_round_digest(
          [](Topology t, const auto& in, const auto& net, const auto& opt) {
            return gossip::make_centroid_round_runner(std::move(t), in, net,
                                                      opt);
          },
          kCentroidNodes, config);

      auto via_config = gossip::make_centroid_round_runner(
          Topology::complete(kCentroidNodes), inputs, config);
      via_config.run_rounds(kRounds);

      auto scale = gossip::make_centroid_scale_engine(
          Topology::complete(kCentroidNodes), inputs, config);
      scale.run_rounds(kRounds);

      EXPECT_EQ(classic, digest_nodes(via_config))
          << "seed " << seed << " loss " << loss;
      EXPECT_EQ(classic, digest_engine(scale))
          << "seed " << seed << " loss " << loss;
    }
  }
}

TEST(ScaleEquivalence, GmRoundBitIdentical) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    for (const double loss : {0.0, 0.1}) {
      EngineConfig config = base_config(kGmNodes, seed);
      config.faults.message_loss_probability = loss;
      const auto inputs = bimodal_inputs(kGmNodes, seed);
      const std::string classic = classic_round_digest(
          [](Topology t, const auto& in, const auto& net, const auto& opt) {
            return gossip::make_gm_round_runner(std::move(t), in, net, opt);
          },
          kGmNodes, config);

      auto via_config = gossip::make_gm_round_runner(
          Topology::complete(kGmNodes), inputs, config);
      via_config.run_rounds(kRounds);

      auto scale = gossip::make_gm_scale_engine(Topology::complete(kGmNodes),
                                                inputs, config);
      scale.run_rounds(kRounds);

      EXPECT_EQ(classic, digest_nodes(via_config))
          << "seed " << seed << " loss " << loss;
      EXPECT_EQ(classic, digest_engine(scale))
          << "seed " << seed << " loss " << loss;
    }
  }
}

// ---------------------------------------------------------------------------
// Contract 2 (async mode): EngineConfig facade ≡ hand-built AsyncRunner.
// ---------------------------------------------------------------------------

TEST(ScaleEquivalence, AsyncFacadeBitIdentical) {
  constexpr double kHorizon = 20.0;
  for (const std::uint64_t seed : {1, 2, 3}) {
    EngineConfig config = base_config(kGmNodes, seed);
    config.mode = EngineMode::async;
    const auto inputs = bimodal_inputs(kGmNodes, seed);

    gossip::NetworkConfig net;
    net.k = config.k;
    net.seed = config.protocol_seed;
    AsyncRunnerOptions options;
    static_cast<CommonRunnerOptions&>(options) =
        static_cast<const CommonRunnerOptions&>(config);

    {
      auto classic = gossip::make_gm_async_runner(Topology::complete(kGmNodes),
                                                  inputs, net, options);
      classic.run_until(kHorizon);
      auto facade = gossip::make_gm_async_runner(Topology::complete(kGmNodes),
                                                 inputs, config);
      facade.run_until(kHorizon);
      EXPECT_EQ(digest_nodes(classic), digest_nodes(facade)) << "gm " << seed;
    }
    {
      auto classic = gossip::make_centroid_async_runner(
          Topology::complete(kGmNodes), inputs, net, options);
      classic.run_until(kHorizon);
      auto facade = gossip::make_centroid_async_runner(
          Topology::complete(kGmNodes), inputs, config);
      facade.run_until(kHorizon);
      EXPECT_EQ(digest_nodes(classic), digest_nodes(facade))
          << "centroid " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Contract 1, stressed along every remaining axis.
// ---------------------------------------------------------------------------

/// Runs classic and scale side by side on the same topology/config and
/// expects identical digests (and, with crashes, identical alive sets).
void expect_round_equivalence(const Topology& topology,
                              const std::vector<linalg::Vector>& inputs,
                              const EngineConfig& config,
                              const std::string& label) {
  auto classic =
      gossip::make_centroid_round_runner(topology, inputs, config);
  classic.run_rounds(kRounds);
  auto scale = gossip::make_centroid_scale_engine(topology, inputs, config);
  scale.run_rounds(kRounds);
  EXPECT_EQ(digest_nodes(classic), digest_engine(scale)) << label;
  for (NodeId i = 0; i < topology.num_nodes(); ++i) {
    ASSERT_EQ(classic.alive(i), scale.alive(i)) << label << " node " << i;
  }
}

TEST(ScaleEquivalence, PatternsAndSelection) {
  const auto inputs = bimodal_inputs(kCentroidNodes, 7);
  for (const GossipPattern pattern :
       {GossipPattern::push, GossipPattern::pull, GossipPattern::push_pull}) {
    for (const NeighborSelection selection :
         {NeighborSelection::uniform_random, NeighborSelection::round_robin}) {
      EngineConfig config = base_config(kCentroidNodes, 7);
      config.pattern = pattern;
      config.selection = selection;
      expect_round_equivalence(
          Topology::complete(kCentroidNodes), inputs, config,
          "pattern " + std::to_string(static_cast<int>(pattern)) +
              " selection " + std::to_string(static_cast<int>(selection)));
    }
  }
}

TEST(ScaleEquivalence, CrashModels) {
  const auto inputs = bimodal_inputs(kCentroidNodes, 5);
  for (const CrashSendPolicy policy :
       {CrashSendPolicy::avoid_crashed, CrashSendPolicy::drop_at_crashed}) {
    EngineConfig config = base_config(kCentroidNodes, 5);
    config.faults.crash_probability = 0.05;
    config.faults.crash_send_policy = policy;
    config.pattern = GossipPattern::push_pull;
    expect_round_equivalence(Topology::complete(kCentroidNodes), inputs,
                             config,
                             policy == CrashSendPolicy::avoid_crashed
                                 ? "avoid_crashed"
                                 : "drop_at_crashed");
  }
}

TEST(ScaleEquivalence, SparseTopologies) {
  const auto inputs = bimodal_inputs(kCentroidNodes, 11);
  EngineConfig config = base_config(kCentroidNodes, 11);
  stats::Rng topo_rng(42);
  const Topology topologies[] = {
      Topology::ring(kCentroidNodes),
      Topology::grid(10, 20, true),
      Topology::random_geometric(kCentroidNodes, 0.2, topo_rng),
      Topology::erdos_renyi(kCentroidNodes, 0.08, topo_rng),
  };
  for (std::size_t t = 0; t < std::size(topologies); ++t) {
    expect_round_equivalence(topologies[t], inputs, config,
                             "topology " + std::to_string(t));
  }
}

TEST(ScaleEquivalence, ParallelismInvariant) {
  const auto inputs = bimodal_inputs(kCentroidNodes, 13);
  EngineConfig sequential = base_config(kCentroidNodes, 13);
  sequential.pattern = GossipPattern::push_pull;
  EngineConfig threaded = sequential;
  threaded.parallelism = 3;

  auto engine_seq = gossip::make_centroid_scale_engine(
      Topology::complete(kCentroidNodes), inputs, sequential);
  engine_seq.run_rounds(kRounds);
  auto engine_par = gossip::make_centroid_scale_engine(
      Topology::complete(kCentroidNodes), inputs, threaded);
  engine_par.run_rounds(kRounds);
  EXPECT_EQ(digest_engine(engine_seq), digest_engine(engine_par));

  // And against the threaded classic runner.
  auto classic = gossip::make_centroid_round_runner(
      Topology::complete(kCentroidNodes), inputs, threaded);
  classic.run_rounds(kRounds);
  EXPECT_EQ(digest_nodes(classic), digest_engine(engine_par));
}

TEST(ScaleEquivalence, GmParallelismInvariant) {
  const auto inputs = bimodal_inputs(kGmNodes, 17);
  EngineConfig sequential = base_config(kGmNodes, 17);
  EngineConfig threaded = sequential;
  threaded.parallelism = 3;

  auto engine_seq = gossip::make_gm_scale_engine(Topology::complete(kGmNodes),
                                                 inputs, sequential);
  engine_seq.run_rounds(10);
  auto engine_par = gossip::make_gm_scale_engine(Topology::complete(kGmNodes),
                                                 inputs, threaded);
  engine_par.run_rounds(10);
  EXPECT_EQ(digest_engine(engine_seq), digest_engine(engine_par));
}

// ---------------------------------------------------------------------------
// Contract 3: streaming metrics ≡ materializing metrics.
// ---------------------------------------------------------------------------

TEST(ScaleEquivalence, StreamingMetricsMatch) {
  const auto inputs = bimodal_inputs(kCentroidNodes, 19);
  const EngineConfig config = base_config(kCentroidNodes, 19);
  auto classic = gossip::make_centroid_round_runner(
      Topology::complete(kCentroidNodes), inputs, config);
  classic.run_rounds(kRounds);
  auto scale = gossip::make_centroid_scale_engine(
      Topology::complete(kCentroidNodes), inputs, config);
  scale.run_rounds(kRounds);

  EXPECT_DOUBLE_EQ(
      metrics::max_disagreement_vs_first<summaries::CentroidPolicy>(
          classic.nodes()),
      metrics::streaming_max_disagreement<summaries::CentroidPolicy>(scale));
  EXPECT_EQ(metrics::total_quanta(classic.nodes()), scale.total_quanta());
}

// ---------------------------------------------------------------------------
// Scale smoke: 100k nodes under the normal ctest timeout.
// ---------------------------------------------------------------------------

TEST(ScaleEquivalence, Smoke100kCentroid) {
  constexpr std::size_t kBig = 100'000;
  const auto inputs = bimodal_inputs(kBig, 1);
  EngineConfig config = base_config(kBig, 1);
  config.parallelism = 0;  // one lane per hardware thread
  config.backend = EngineBackend::auto_select;
  config.mode = EngineMode::round;
  ASSERT_TRUE(config.use_soa());

  // TopologySpec's exact-factorization grid packing: 100000 → 250×400.
  config.topology.family = TopologyFamily::grid;
  config.topology.nodes = kBig;
  stats::Rng topo_rng(0);
  Topology grid = config.build_topology(topo_rng);
  ASSERT_EQ(grid.num_nodes(), kBig);
  auto engine =
      gossip::make_centroid_scale_engine(std::move(grid), inputs, config);
  engine.run_rounds(3);
  EXPECT_EQ(engine.round(), 3U);
  EXPECT_EQ(engine.alive_count(), kBig);
  // Exact conservation at 100k nodes: no quantum was minted or lost.
  EXPECT_EQ(engine.total_quanta(),
            static_cast<std::int64_t>(kBig) * config.quanta_per_unit);
  EXPECT_GE(metrics::streaming_mean_collections(engine), 1.0);
}

}  // namespace
}  // namespace ddc::sim
