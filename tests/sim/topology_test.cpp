#include <ddc/sim/topology.hpp>

#include <set>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>

namespace ddc::sim {
namespace {

TEST(Topology, CompleteGraphShape) {
  const Topology t = Topology::complete(5);
  EXPECT_EQ(t.num_nodes(), 5u);
  EXPECT_EQ(t.num_edges(), 20u);  // n(n−1) directed edges
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(t.neighbors(i).size(), 4u);
    EXPECT_FALSE(t.has_edge(i, i));
  }
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.diameter(), 1u);
}

TEST(Topology, RingShape) {
  const Topology t = Topology::ring(6);
  EXPECT_EQ(t.num_edges(), 12u);
  EXPECT_TRUE(t.has_edge(0, 5));
  EXPECT_TRUE(t.has_edge(5, 0));
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.diameter(), 3u);
}

TEST(Topology, TwoNodeRingHasNoDuplicateEdges) {
  const Topology t = Topology::ring(2);
  EXPECT_EQ(t.num_edges(), 2u);
}

TEST(Topology, DirectedRingIsStronglyConnectedOneWay) {
  const Topology t = Topology::directed_ring(4);
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_FALSE(t.has_edge(1, 0));
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.diameter(), 3u);
}

TEST(Topology, LineShapeAndDiameter) {
  const Topology t = Topology::line(5);
  EXPECT_EQ(t.num_edges(), 8u);
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.diameter(), 4u);
}

TEST(Topology, StarCenterTouchesEverything) {
  const Topology t = Topology::star(6);
  EXPECT_EQ(t.neighbors(0).size(), 5u);
  for (NodeId i = 1; i < 6; ++i) EXPECT_EQ(t.neighbors(i).size(), 1u);
  EXPECT_EQ(t.diameter(), 2u);
}

TEST(Topology, GridShape) {
  const Topology t = Topology::grid(3, 4);
  EXPECT_EQ(t.num_nodes(), 12u);
  // Corner (0,0) has 2 neighbors; interior (1,1) has 4.
  EXPECT_EQ(t.neighbors(0).size(), 2u);
  EXPECT_EQ(t.neighbors(1 * 4 + 1).size(), 4u);
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.diameter(), 5u);  // (3−1) + (4−1)
}

TEST(Topology, TorusHasUniformDegree) {
  const Topology t = Topology::grid(4, 4, /*torus=*/true);
  for (NodeId i = 0; i < 16; ++i) EXPECT_EQ(t.neighbors(i).size(), 4u);
  EXPECT_TRUE(t.is_connected());
}

TEST(Topology, RandomGeometricConnectedAndHasPositions) {
  stats::Rng rng(91);
  const Topology t = Topology::random_geometric(50, 0.35, rng);
  EXPECT_TRUE(t.is_connected());
  ASSERT_TRUE(t.positions().has_value());
  EXPECT_EQ(t.positions()->size(), 50u);
}

TEST(Topology, RandomGeometricImpossibleRadiusThrows) {
  stats::Rng rng(92);
  EXPECT_THROW((void)Topology::random_geometric(50, 1e-6, rng, 3), ConfigError);
}

TEST(Topology, ErdosRenyiConnected) {
  stats::Rng rng(93);
  const Topology t = Topology::erdos_renyi(40, 0.2, rng);
  EXPECT_TRUE(t.is_connected());
}

TEST(Topology, FromEdgesDirected) {
  const Topology t = Topology::from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_TRUE(t.is_connected());
  EXPECT_FALSE(t.has_edge(1, 0));
}

TEST(Topology, FromEdgesDetectsDisconnection) {
  const Topology t = Topology::from_edges(3, {{0, 1}, {1, 0}});
  EXPECT_FALSE(t.is_connected());
}

TEST(Topology, OneWayEdgeIsNotStronglyConnected) {
  const Topology t = Topology::from_edges(2, {{0, 1}});
  EXPECT_FALSE(t.is_connected());
}

TEST(Topology, RejectsSelfLoopsAndDuplicates) {
  EXPECT_THROW((void)Topology::from_edges(2, {{0, 0}}), ContractViolation);
  EXPECT_THROW((void)Topology::from_edges(2, {{0, 1}, {0, 1}}),
               ContractViolation);
  EXPECT_THROW((void)Topology::from_edges(2, {{0, 5}}), ContractViolation);
}

// Neighbor order is part of the Topology contract: the engines' round-robin
// cursors and uniform_index draws walk neighbors(i) positionally, so CSR
// compression must keep each node's edge-insertion order.
TEST(Topology, NeighborOrderMatchesInsertionOrder) {
  const Topology t = Topology::from_edges(4, {{0, 3}, {0, 1}, {0, 2}, {1, 0},
                                              {2, 0}, {3, 0}});
  const auto nbrs = t.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 3u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 2u);
}

// The historical all-pairs random-geometric construction, kept as the
// reference the grid-bucketed version must match edge for edge and
// order for order (same RNG consumption, same insertion sequence).
std::vector<std::vector<NodeId>> reference_rgg_adjacency(
    std::size_t n, double radius, stats::Rng& rng) {
  std::vector<std::pair<double, double>> pos(n);
  for (auto& p : pos) p = {rng.uniform(), rng.uniform()};
  const double r2 = radius * radius;
  std::vector<std::vector<NodeId>> out(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      const double dx = pos[i].first - pos[j].first;
      const double dy = pos[i].second - pos[j].second;
      if (dx * dx + dy * dy <= r2) {
        out[i].push_back(j);
        out[j].push_back(i);
      }
    }
  }
  return out;
}

TEST(Topology, RandomGeometricMatchesAllPairsReference) {
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    for (const double radius : {0.18, 0.3, 0.55}) {
      stats::Rng bucketed_rng(seed);
      const Topology t = Topology::random_geometric(60, radius, bucketed_rng);
      // Replay the accepted draw: the reference consumes the same stream,
      // so the last 60 position pairs the Topology kept are regenerated by
      // rerunning every rejected attempt too.
      stats::Rng reference_rng(seed);
      std::vector<std::vector<NodeId>> want;
      while (true) {
        want = reference_rgg_adjacency(60, radius, reference_rng);
        // Connectivity of the undirected reference graph via BFS.
        std::vector<bool> seen(60, false);
        std::vector<NodeId> stack{0};
        seen[0] = true;
        std::size_t count = 1;
        while (!stack.empty()) {
          const NodeId u = stack.back();
          stack.pop_back();
          for (const NodeId v : want[u]) {
            if (!seen[v]) {
              seen[v] = true;
              ++count;
              stack.push_back(v);
            }
          }
        }
        if (count == 60) break;
      }
      for (NodeId i = 0; i < 60; ++i) {
        const auto nbrs = t.neighbors(i);
        ASSERT_EQ(std::vector<NodeId>(nbrs.begin(), nbrs.end()), want[i])
            << "seed=" << seed << " radius=" << radius << " node=" << i;
      }
    }
  }
}

TEST(Topology, RandomGeometricScalesToLargeN) {
  stats::Rng rng(17);
  // Quadratic construction would make this test's 20k nodes crawl; the
  // bucketed search keeps it near-instant and connected.
  const Topology t = Topology::random_geometric(
      20000, 2.0 / std::sqrt(20000.0) * 1.5, rng);
  EXPECT_EQ(t.num_nodes(), 20000u);
  EXPECT_TRUE(t.is_connected());
}

TEST(Topology, NeighborsMatchesRingStructure) {
  const Topology t = Topology::ring(5);
  for (NodeId i = 0; i < 5; ++i) {
    const auto nbrs = t.neighbors(i);
    const std::vector<NodeId> got(nbrs.begin(), nbrs.end());
    const std::vector<NodeId> want = {(i + 4) % 5, (i + 1) % 5};
    EXPECT_EQ(std::set<NodeId>(got.begin(), got.end()),
              std::set<NodeId>(want.begin(), want.end()));
  }
}

}  // namespace
}  // namespace ddc::sim
