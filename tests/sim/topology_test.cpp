#include <ddc/sim/topology.hpp>

#include <gtest/gtest.h>

#include <ddc/common/error.hpp>

namespace ddc::sim {
namespace {

TEST(Topology, CompleteGraphShape) {
  const Topology t = Topology::complete(5);
  EXPECT_EQ(t.num_nodes(), 5u);
  EXPECT_EQ(t.num_edges(), 20u);  // n(n−1) directed edges
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(t.neighbors(i).size(), 4u);
    EXPECT_FALSE(t.has_edge(i, i));
  }
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.diameter(), 1u);
}

TEST(Topology, RingShape) {
  const Topology t = Topology::ring(6);
  EXPECT_EQ(t.num_edges(), 12u);
  EXPECT_TRUE(t.has_edge(0, 5));
  EXPECT_TRUE(t.has_edge(5, 0));
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.diameter(), 3u);
}

TEST(Topology, TwoNodeRingHasNoDuplicateEdges) {
  const Topology t = Topology::ring(2);
  EXPECT_EQ(t.num_edges(), 2u);
}

TEST(Topology, DirectedRingIsStronglyConnectedOneWay) {
  const Topology t = Topology::directed_ring(4);
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_FALSE(t.has_edge(1, 0));
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.diameter(), 3u);
}

TEST(Topology, LineShapeAndDiameter) {
  const Topology t = Topology::line(5);
  EXPECT_EQ(t.num_edges(), 8u);
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.diameter(), 4u);
}

TEST(Topology, StarCenterTouchesEverything) {
  const Topology t = Topology::star(6);
  EXPECT_EQ(t.neighbors(0).size(), 5u);
  for (NodeId i = 1; i < 6; ++i) EXPECT_EQ(t.neighbors(i).size(), 1u);
  EXPECT_EQ(t.diameter(), 2u);
}

TEST(Topology, GridShape) {
  const Topology t = Topology::grid(3, 4);
  EXPECT_EQ(t.num_nodes(), 12u);
  // Corner (0,0) has 2 neighbors; interior (1,1) has 4.
  EXPECT_EQ(t.neighbors(0).size(), 2u);
  EXPECT_EQ(t.neighbors(1 * 4 + 1).size(), 4u);
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.diameter(), 5u);  // (3−1) + (4−1)
}

TEST(Topology, TorusHasUniformDegree) {
  const Topology t = Topology::grid(4, 4, /*torus=*/true);
  for (NodeId i = 0; i < 16; ++i) EXPECT_EQ(t.neighbors(i).size(), 4u);
  EXPECT_TRUE(t.is_connected());
}

TEST(Topology, RandomGeometricConnectedAndHasPositions) {
  stats::Rng rng(91);
  const Topology t = Topology::random_geometric(50, 0.35, rng);
  EXPECT_TRUE(t.is_connected());
  ASSERT_TRUE(t.positions().has_value());
  EXPECT_EQ(t.positions()->size(), 50u);
}

TEST(Topology, RandomGeometricImpossibleRadiusThrows) {
  stats::Rng rng(92);
  EXPECT_THROW((void)Topology::random_geometric(50, 1e-6, rng, 3), ConfigError);
}

TEST(Topology, ErdosRenyiConnected) {
  stats::Rng rng(93);
  const Topology t = Topology::erdos_renyi(40, 0.2, rng);
  EXPECT_TRUE(t.is_connected());
}

TEST(Topology, FromEdgesDirected) {
  const Topology t = Topology::from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_TRUE(t.is_connected());
  EXPECT_FALSE(t.has_edge(1, 0));
}

TEST(Topology, FromEdgesDetectsDisconnection) {
  const Topology t = Topology::from_edges(3, {{0, 1}, {1, 0}});
  EXPECT_FALSE(t.is_connected());
}

TEST(Topology, OneWayEdgeIsNotStronglyConnected) {
  const Topology t = Topology::from_edges(2, {{0, 1}});
  EXPECT_FALSE(t.is_connected());
}

TEST(Topology, RejectsSelfLoopsAndDuplicates) {
  EXPECT_THROW((void)Topology::from_edges(2, {{0, 0}}), ContractViolation);
  EXPECT_THROW((void)Topology::from_edges(2, {{0, 1}, {0, 1}}),
               ContractViolation);
  EXPECT_THROW((void)Topology::from_edges(2, {{0, 5}}), ContractViolation);
}

}  // namespace
}  // namespace ddc::sim
