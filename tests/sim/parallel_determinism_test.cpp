// The engine's headline guarantee: `parallelism = N` is BIT-IDENTICAL to
// `parallelism = 1`. A parallel run must reproduce the sequential run's
// classifications (compared on the wire, byte for byte), its trace event
// sequence, and its crash pattern — across gossip patterns and failure
// configurations. Any divergence means an environment draw leaked into a
// parallel phase or two nodes raced on shared state.
#include <ddc/gossip/runners.hpp>
#include <ddc/sim/trace.hpp>
#include <ddc/wire/serialize.hpp>

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ddc::sim {
namespace {

struct FaultConfig {
  std::string name;
  GossipPattern pattern = GossipPattern::push;
  double crash_probability = 0.0;
  double loss_probability = 0.0;
  NeighborSelection selection = NeighborSelection::uniform_random;
};

std::vector<FaultConfig> fault_configs() {
  return {
      {"push_clean", GossipPattern::push, 0.0, 0.0},
      {"push_crashes", GossipPattern::push, 0.05, 0.0},
      {"push_losses", GossipPattern::push, 0.0, 0.1},
      {"push_crashes_losses", GossipPattern::push, 0.05, 0.1},
      {"push_pull_clean", GossipPattern::push_pull, 0.0, 0.0},
      {"push_pull_crashes", GossipPattern::push_pull, 0.05, 0.0},
      {"push_pull_losses", GossipPattern::push_pull, 0.0, 0.1},
      {"push_pull_crashes_losses", GossipPattern::push_pull, 0.05, 0.1},
      {"pull_crashes", GossipPattern::pull, 0.05, 0.0},
      {"push_pull_round_robin", GossipPattern::push_pull, 0.05, 0.0,
       NeighborSelection::round_robin},
  };
}

struct RunResult {
  std::vector<std::vector<std::byte>> classifications;
  std::vector<bool> alive;
  std::vector<TraceEvent> events;
};

/// 64-node GM network, 25 rounds at the given thread count.
RunResult run_gm(const FaultConfig& config, std::size_t parallelism) {
  const std::size_t n = 64;
  stats::Rng rng(7);
  std::vector<linalg::Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(linalg::Vector{
        i % 2 == 0 ? rng.normal(0.0, 1.0) : rng.normal(30.0, 2.0),
        rng.normal(0.0, 1.0)});
  }
  gossip::NetworkConfig net;
  net.k = 2;
  net.seed = 8;
  RoundRunnerOptions options;
  options.pattern = config.pattern;
  options.selection = config.selection;
  options.crash_probability = config.crash_probability;
  options.message_loss_probability = config.loss_probability;
  options.seed = 9;
  options.parallelism = parallelism;

  auto runner = make_gm_round_runner(Topology::complete(n), inputs, net,
                                     options);
  TraceRecorder trace;
  runner.set_trace(&trace);
  runner.run_rounds(25);

  RunResult result;
  for (const auto& node : runner.nodes()) {
    result.classifications.push_back(
        wire::encode_classification(node.classification()));
  }
  for (NodeId i = 0; i < n; ++i) result.alive.push_back(runner.alive(i));
  result.events = trace.events();
  return result;
}

TEST(ParallelDeterminism, FourThreadsBitIdenticalToSequential) {
  for (const FaultConfig& config : fault_configs()) {
    SCOPED_TRACE(config.name);
    const RunResult sequential = run_gm(config, 1);
    const RunResult parallel = run_gm(config, 4);

    ASSERT_EQ(sequential.classifications.size(),
              parallel.classifications.size());
    for (std::size_t i = 0; i < sequential.classifications.size(); ++i) {
      EXPECT_EQ(sequential.classifications[i], parallel.classifications[i])
          << "node " << i << " classification diverged";
    }
    EXPECT_EQ(sequential.alive, parallel.alive);
    EXPECT_EQ(sequential.events, parallel.events);
  }
}

TEST(ParallelDeterminism, ThreadCountIsIrrelevant) {
  // 1, 2, 3 and 8 lanes (8 > nodes/chunking granularity) all agree.
  FaultConfig config{"push_pull_crashes", GossipPattern::push_pull, 0.05, 0.0};
  const RunResult reference = run_gm(config, 1);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    SCOPED_TRACE(threads);
    const RunResult other = run_gm(config, threads);
    EXPECT_EQ(reference.classifications, other.classifications);
    EXPECT_EQ(reference.alive, other.alive);
    EXPECT_EQ(reference.events, other.events);
  }
}

TEST(ParallelDeterminism, AutoParallelismMatchesSequential) {
  // parallelism = 0 resolves to the hardware thread count — whatever that
  // is on the host, results must not change.
  FaultConfig config{"push_crashes", GossipPattern::push, 0.05, 0.0};
  const RunResult sequential = run_gm(config, 1);
  const RunResult automatic = run_gm(config, 0);
  EXPECT_EQ(sequential.classifications, automatic.classifications);
  EXPECT_EQ(sequential.alive, automatic.alive);
  EXPECT_EQ(sequential.events, automatic.events);
}

TEST(ParallelDeterminism, LossFreeRunsUnaffectedByLossStream) {
  // The loss RNG stream is derived independently of selection/crash draws,
  // so configuring loss_probability = 0 must reproduce a run where the
  // loss knob never existed (same selection draws, same crash schedule).
  FaultConfig a{"push_crashes", GossipPattern::push, 0.05, 0.0};
  const RunResult r1 = run_gm(a, 1);
  const RunResult r2 = run_gm(a, 4);
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_FALSE(r1.events.empty());
}

}  // namespace
}  // namespace ddc::sim
