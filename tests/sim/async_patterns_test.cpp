// Pull and push-pull gossip on the asynchronous runner.
#include <gtest/gtest.h>

#include <ddc/gossip/network.hpp>
#include <ddc/metrics/classification_metrics.hpp>
#include <ddc/sim/async_runner.hpp>
#include <ddc/summaries/centroid.hpp>

namespace ddc::sim {
namespace {

using linalg::Vector;

std::vector<Vector> bimodal(std::size_t n, stats::Rng& rng) {
  std::vector<Vector> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(Vector{rng.normal(i % 2 == 0 ? 0.0 : 40.0, 1.0)});
  }
  return inputs;
}

AsyncRunnerOptions options_with(GossipPattern pattern,
                                std::uint64_t seed) {
  AsyncRunnerOptions options;
  options.pattern = pattern;
  options.seed = seed;
  return options;
}

double run_and_measure(GossipPattern pattern, std::uint64_t seed,
                       double until) {
  stats::Rng rng(seed);
  const std::size_t n = 16;
  const auto inputs = bimodal(n, rng);
  gossip::NetworkConfig config;
  config.k = 2;
  config.seed = seed;
  AsyncRunner<gossip::CentroidNode> runner(
      Topology::ring(n), gossip::make_centroid_nodes(inputs, config),
      options_with(pattern, seed));
  runner.run_until(until);
  return metrics::max_disagreement_vs_first<summaries::CentroidPolicy>(
      runner.nodes());
}

TEST(AsyncPatterns, PullConverges) {
  EXPECT_LT(run_and_measure(GossipPattern::pull, 21, 800.0), 0.05);
}

TEST(AsyncPatterns, PushPullConverges) {
  EXPECT_LT(run_and_measure(GossipPattern::push_pull, 22, 800.0), 0.05);
}

TEST(AsyncPatterns, PullRequestsAreCountedOnlyForPullModes) {
  stats::Rng rng(23);
  const auto inputs = bimodal(8, rng);
  gossip::NetworkConfig config;
  config.k = 2;

  AsyncRunner<gossip::CentroidNode> push(
      Topology::complete(8), gossip::make_centroid_nodes(inputs, config),
      options_with(GossipPattern::push, 23));
  push.run_until(50.0);
  EXPECT_EQ(push.pull_requests_delivered(), 0u);
  EXPECT_GT(push.messages_delivered(), 0u);

  AsyncRunner<gossip::CentroidNode> pull(
      Topology::complete(8), gossip::make_centroid_nodes(inputs, config),
      options_with(GossipPattern::pull, 23));
  pull.run_until(50.0);
  EXPECT_GT(pull.pull_requests_delivered(), 0u);
  // Every delivered data message in pull mode was solicited.
  EXPECT_LE(pull.messages_delivered(), pull.pull_requests_delivered());
}

TEST(AsyncPatterns, PushPullMovesMoreDataPerTick) {
  stats::Rng rng(24);
  const auto inputs = bimodal(8, rng);
  gossip::NetworkConfig config;
  config.k = 2;

  AsyncRunner<gossip::CentroidNode> push(
      Topology::complete(8), gossip::make_centroid_nodes(inputs, config),
      options_with(GossipPattern::push, 24));
  AsyncRunner<gossip::CentroidNode> both(
      Topology::complete(8), gossip::make_centroid_nodes(inputs, config),
      options_with(GossipPattern::push_pull, 24));
  push.run_until(100.0);
  both.run_until(100.0);
  EXPECT_GT(both.messages_delivered(), push.messages_delivered() * 3 / 2);
}

TEST(AsyncPatterns, WeightConservedUnderPullOnceQuiescent) {
  stats::Rng rng(25);
  const std::size_t n = 10;
  const auto inputs = bimodal(n, rng);
  gossip::NetworkConfig config;
  config.k = 2;
  AsyncRunnerOptions options = options_with(GossipPattern::pull, 25);
  options.max_delay = 0.1;  // short delays so quiescence is quick
  AsyncRunner<gossip::CentroidNode> runner(
      Topology::complete(n), gossip::make_centroid_nodes(inputs, config),
      options);
  runner.run_until(200.0);
  // Everything in flight at the horizon is bounded by a couple of
  // exchanges; the held weight must be within that of the total.
  const std::int64_t held = metrics::total_quanta(runner.nodes());
  const std::int64_t total =
      static_cast<std::int64_t>(n) * (std::int64_t{1} << 20);
  EXPECT_LE(held, total);
  EXPECT_GE(held, total - (std::int64_t{1} << 20));
}

}  // namespace
}  // namespace ddc::sim
