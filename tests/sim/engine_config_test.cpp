// EngineConfig: the unified simulation configuration object.
#include <ddc/sim/engine_config.hpp>

#include <ddc/common/error.hpp>

#include <gtest/gtest.h>

namespace ddc::sim {
namespace {

TEST(EngineConfig, TopologyFamilyNamesRoundTrip) {
  for (const TopologyFamily family :
       {TopologyFamily::complete, TopologyFamily::ring,
        TopologyFamily::directed_ring, TopologyFamily::line,
        TopologyFamily::star, TopologyFamily::grid, TopologyFamily::torus,
        TopologyFamily::geometric, TopologyFamily::erdos_renyi}) {
    EXPECT_EQ(parse_topology_family(topology_family_name(family)), family);
  }
  EXPECT_THROW((void)parse_topology_family("moebius"), ConfigError);
}

TEST(EngineConfig, TopologySpecDefaultsMatchDdcsimFormulas) {
  TopologySpec spec;
  spec.nodes = 200;
  EXPECT_DOUBLE_EQ(spec.resolved_radius(), 0.15);  // max(0.15, 2/√200)
  EXPECT_DOUBLE_EQ(spec.resolved_edge_probability(), 0.05);  // max(0.05, 8/200)
  spec.nodes = 64;
  EXPECT_DOUBLE_EQ(spec.resolved_radius(), 0.25);            // 2/8
  EXPECT_DOUBLE_EQ(spec.resolved_edge_probability(), 0.125);  // 8/64
  spec.radius = 0.4;
  spec.edge_probability = 0.3;
  EXPECT_DOUBLE_EQ(spec.resolved_radius(), 0.4);
  EXPECT_DOUBLE_EQ(spec.resolved_edge_probability(), 0.3);
}

TEST(EngineConfig, TopologySpecBuildsEveryFamily) {
  stats::Rng rng(1);
  for (const TopologyFamily family :
       {TopologyFamily::complete, TopologyFamily::ring,
        TopologyFamily::directed_ring, TopologyFamily::line,
        TopologyFamily::star, TopologyFamily::geometric,
        TopologyFamily::erdos_renyi}) {
    TopologySpec spec;
    spec.family = family;
    spec.nodes = 25;
    EXPECT_EQ(spec.build(rng).num_nodes(), 25U) << topology_family_name(family);
  }
  // Grid packs the most-square exact factorization, so rows·cols == n
  // for every n — the engines require one node per vertex.
  TopologySpec grid;
  grid.family = TopologyFamily::grid;
  grid.nodes = 25;
  EXPECT_EQ(grid.build(rng).num_nodes(), 25U);  // 5×5
  grid.nodes = 24;
  EXPECT_EQ(grid.build(rng).num_nodes(), 24U);  // 4×6
  grid.nodes = 100000;
  EXPECT_EQ(grid.build(rng).num_nodes(), 100000U);  // 250×400, not 316×317
  grid.nodes = 13;
  EXPECT_EQ(grid.build(rng).num_nodes(), 13U);  // prime: 1×13 line
}

TEST(EngineConfig, RoundOptionsSliceCarriesEverything) {
  EngineConfig config;
  config.selection = NeighborSelection::round_robin;
  config.pattern = GossipPattern::push_pull;
  config.seed = 99;
  config.faults.crash_probability = 0.05;
  config.faults.crash_send_policy = CrashSendPolicy::drop_at_crashed;
  config.faults.message_loss_probability = 0.1;
  config.parallelism = 4;

  const RoundRunnerOptions round = config.round_options();
  EXPECT_EQ(round.selection, NeighborSelection::round_robin);
  EXPECT_EQ(round.pattern, GossipPattern::push_pull);
  EXPECT_EQ(round.seed, 99U);
  EXPECT_DOUBLE_EQ(round.crash_probability, 0.05);
  EXPECT_EQ(round.crash_send_policy, CrashSendPolicy::drop_at_crashed);
  EXPECT_DOUBLE_EQ(round.message_loss_probability, 0.1);
  EXPECT_EQ(round.parallelism, 4U);

  config.async.mean_tick_interval = 2.0;
  config.async.min_delay = 0.1;
  config.async.max_delay = 1.5;
  const AsyncRunnerOptions async = config.async_options();
  EXPECT_EQ(async.selection, NeighborSelection::round_robin);
  EXPECT_EQ(async.seed, 99U);
  EXPECT_DOUBLE_EQ(async.mean_tick_interval, 2.0);
  EXPECT_DOUBLE_EQ(async.min_delay, 0.1);
  EXPECT_DOUBLE_EQ(async.max_delay, 1.5);
}

TEST(EngineConfig, BackendResolution) {
  EngineConfig config;
  config.topology.nodes = 200;
  EXPECT_FALSE(config.use_soa());  // auto: below threshold
  config.topology.nodes = 16384;
  EXPECT_TRUE(config.use_soa());  // auto: at threshold
  config.mode = EngineMode::async;
  EXPECT_FALSE(config.use_soa());  // auto never picks soa for async
  config.mode = EngineMode::round;
  config.backend = EngineBackend::object;
  EXPECT_FALSE(config.use_soa());
  config.backend = EngineBackend::soa;
  config.topology.nodes = 10;
  EXPECT_TRUE(config.use_soa());  // explicit soa ignores the threshold
}

TEST(EngineConfig, ValidateRejectsBadValues) {
  EngineConfig config;
  config.validate();  // defaults are valid

  EngineConfig bad = config;
  bad.topology.nodes = 1;
  EXPECT_THROW(bad.validate(), ConfigError);

  bad = config;
  bad.faults.crash_probability = 1.5;
  EXPECT_THROW(bad.validate(), ConfigError);

  bad = config;
  bad.faults.message_loss_probability = -0.1;
  EXPECT_THROW(bad.validate(), ConfigError);

  bad = config;
  bad.k = 0;
  EXPECT_THROW(bad.validate(), ConfigError);

  bad = config;
  bad.quanta_per_unit = 0;
  EXPECT_THROW(bad.validate(), ConfigError);

  bad = config;
  bad.async.min_delay = 3.0;  // > max_delay
  EXPECT_THROW(bad.validate(), ConfigError);

  bad = config;
  bad.mode = EngineMode::async;
  bad.backend = EngineBackend::soa;
  EXPECT_THROW(bad.validate(), ConfigError);
}

}  // namespace
}  // namespace ddc::sim
