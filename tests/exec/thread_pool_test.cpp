// Thread pool and deterministic parallel_for.
#include <ddc/exec/parallel_for.hpp>
#include <ddc/exec/thread_pool.hpp>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ddc::exec {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<int> count{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      count.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroWorkerPoolIsValid) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  // parallel_for falls back to the calling thread.
  std::vector<int> hits(10, 0);
  parallel_for(&pool, hits.size(), [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(&pool, visits.size(),
               [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, NullPoolRunsSerially) {
  std::vector<int> order;
  parallel_for(nullptr, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // safe: serial fallback
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ZeroCountIsANoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(&pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, DisjointWritesNeedNoSynchronization) {
  // The engine's usage pattern: each index writes only its own slot.
  ThreadPool pool(4);
  std::vector<std::size_t> out(5000);
  parallel_for(&pool, out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelFor, PropagatesBodyExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_for(&pool, 100,
                            [&](std::size_t i) {
                              if (i == 57) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool survives the failed loop and remains usable.
  std::atomic<int> count{0};
  parallel_for(&pool, 64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelFor, ManySmallLoopsReuseThePool) {
  ThreadPool pool(2);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    parallel_for(&pool, 17, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200L * 17L);
}

}  // namespace
}  // namespace ddc::exec
