// The auditors themselves are correctness-critical: a blind auditor
// green-lights a broken protocol. Each test here feeds an auditor a
// clean pool from a genuinely simulated system (it must accept), then
// plants one specific violation in a snapshot of that pool (it must
// throw AuditFailure, and the message must describe the violation well
// enough to debug from a CI log alone). This is the same pattern as
// ddclint --self-test: every detector is proven live before it is
// trusted as a gate — the fuzz harnesses in fuzz/ rely on these
// auditors as their crash oracle.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include <ddc/audit/auditors.hpp>
#include <ddc/core/classifier.hpp>
#include <ddc/linalg/vector.hpp>
#include <ddc/partition/greedy.hpp>
#include <ddc/summaries/centroid.hpp>

namespace ddc {
namespace {

using linalg::Vector;
using Policy = summaries::CentroidPolicy;
using Partition = partition::GreedyDistancePartition<Policy>;
using Classifier = core::GenericClassifier<Policy, Partition>;
using Summary = Policy::Summary;
using audit::AuditFailure;

constexpr std::int64_t kQuanta = std::int64_t{1} << 12;
constexpr double kTol = 1e-9;

/// A small simulated system: n centroid classifiers with aux tracking,
/// driven through a deterministic burst of split/receive exchanges so
/// the pool holds genuinely merged and re-homed collections, plus one
/// undelivered in-flight message.
struct System {
  std::vector<Vector> inputs;
  std::vector<Classifier> nodes;
  std::vector<Classifier::Message> in_flight;

  explicit System(std::size_t n = 5) {
    core::ClassifierOptions options;
    options.k = 2;
    options.quanta_per_unit = kQuanta;
    options.track_aux = true;
    options.num_nodes = n;
    for (std::size_t i = 0; i < n; ++i) {
      inputs.push_back(Vector{static_cast<double>(i) * 1.5 - 3.0,
                              static_cast<double>(i % 2)});
      options.node_index = i;
      nodes.emplace_back(inputs.back(), Partition{}, options);
    }
    for (std::size_t round = 0; round < 6; ++round) {
      for (std::size_t i = 0; i < n; ++i) {
        nodes[(i + round) % n].receive(nodes[i].split());
      }
    }
    in_flight.push_back(nodes[0].split());
  }

  [[nodiscard]] audit::Pool<Summary> pool() const {
    return audit::collect_pool<Summary>(nodes, in_flight);
  }

  /// An owned copy of every pool collection — the thing tests corrupt.
  [[nodiscard]] std::vector<core::Collection<Summary>> snapshot() const {
    std::vector<core::Collection<Summary>> copy;
    for (const auto* c : pool()) copy.push_back(*c);
    return copy;
  }

  [[nodiscard]] std::int64_t expected_quanta() const {
    return static_cast<std::int64_t>(nodes.size()) * kQuanta;
  }
};

/// Borrow-view over an owned snapshot, as the auditors expect.
audit::Pool<Summary> view(
    const std::vector<core::Collection<Summary>>& storage) {
  audit::Pool<Summary> pool;
  pool.reserve(storage.size());
  for (const auto& c : storage) pool.push_back(&c);
  return pool;
}

std::string failure_message(const std::function<void()>& action) {
  try {
    action();
  } catch (const AuditFailure& failure) {
    return failure.what();
  }
  return {};
}

TEST(ConservationAudit, AcceptsCleanPool) {
  const System sys;
  EXPECT_NO_THROW(
      audit::check_conservation(sys.pool(), sys.expected_quanta()));
}

TEST(ConservationAudit, DetectsLostQuantum) {
  const System sys;
  auto pool = sys.snapshot();
  // Plant: a single quantum evaporates from one collection (the minimal
  // possible conservation violation — one lost unit out of n·2¹²).
  pool[2].weight = core::Weight::from_quanta(pool[2].weight.quanta() - 1);
  const std::string message = failure_message([&] {
    audit::check_conservation(view(pool), sys.expected_quanta());
  });
  ASSERT_FALSE(message.empty()) << "lost quantum went undetected";
  EXPECT_NE(message.find("conservation violated"), std::string::npos)
      << message;
  EXPECT_NE(message.find(std::to_string(sys.expected_quanta() - 1)),
            std::string::npos)
      << "message should state the observed total: " << message;
}

TEST(ConservationAudit, DetectsDuplicatedCollection) {
  const System sys;
  auto pool = sys.snapshot();
  // Plant: one collection exists twice — at a node and, duplicated, in
  // the channel (e.g. a retransmit bug).
  pool.push_back(pool.front());
  const std::string message = failure_message([&] {
    audit::check_conservation(view(pool), sys.expected_quanta());
  });
  ASSERT_FALSE(message.empty()) << "duplicated quanta went undetected";
  EXPECT_NE(message.find("conservation violated"), std::string::npos);
}

TEST(Lemma1Audit, AcceptsCleanPool) {
  const System sys;
  EXPECT_NO_THROW((audit::check_lemma1<Policy>(sys.pool(), sys.inputs,
                                               kQuanta, kTol)));
}

TEST(Lemma1Audit, DetectsMismatchedAuxVector) {
  const System sys;
  auto pool = sys.snapshot();
  // Plant: scale one aux vector — breaks Equation 2 (‖aux‖₁ = weight).
  ASSERT_TRUE(pool[1].aux.has_value());
  *pool[1].aux *= 1.01;
  const std::string message = failure_message([&] {
    audit::check_lemma1<Policy>(view(pool), sys.inputs, kQuanta, kTol);
  });
  ASSERT_FALSE(message.empty()) << "mismatched aux went undetected";
  EXPECT_NE(message.find("lemma 1"), std::string::npos) << message;
  EXPECT_NE(message.find("weight"), std::string::npos)
      << "message should relate ‖aux‖₁ to the weight: " << message;
}

TEST(Lemma1Audit, DetectsCorruptedSummary) {
  const System sys;
  auto pool = sys.snapshot();
  // Plant: nudge a summary away from f(aux) — breaks Equation 1 while
  // keeping Equation 2 intact.
  pool[3].summary[0] += 0.5;
  const std::string message = failure_message([&] {
    audit::check_lemma1<Policy>(view(pool), sys.inputs, kQuanta, kTol);
  });
  ASSERT_FALSE(message.empty()) << "corrupted summary went undetected";
  EXPECT_NE(message.find("does not equal f(aux)"), std::string::npos)
      << message;
}

TEST(Lemma1Audit, DetectsMissingAuxVector) {
  const System sys;
  auto pool = sys.snapshot();
  pool[0].aux.reset();
  const std::string message = failure_message([&] {
    audit::check_lemma1<Policy>(view(pool), sys.inputs, kQuanta, kTol);
  });
  ASSERT_FALSE(message.empty());
  EXPECT_NE(message.find("no auxiliary vector"), std::string::npos)
      << message;
}

TEST(Lemma2Audit, AcceptsMonotoneSimulatedRun) {
  System sys;
  audit::ReferenceAngleMonitor monitor(sys.nodes.size());
  EXPECT_NO_THROW(monitor.observe(sys.pool()));
  // Keep gossiping: Lemma 2 says the maxima must keep not increasing.
  for (std::size_t round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < sys.nodes.size(); ++i) {
      sys.nodes[i].receive(sys.nodes[(i + 1) % sys.nodes.size()].split());
    }
    EXPECT_NO_THROW(monitor.observe(sys.pool())) << "round " << round;
  }
  for (const double maximum : monitor.maxima()) {
    EXPECT_GE(maximum, 0.0);  // every input was observed at least once
  }
}

TEST(Lemma2Audit, DetectsIncreasedReferenceAngle) {
  const System sys;
  audit::ReferenceAngleMonitor monitor(sys.nodes.size());
  auto pool = sys.snapshot();
  monitor.observe(view(pool));
  // Plant: rotate one collection's aux mass fully onto input 0, pushing
  // its angle to every OTHER reference axis to 90° — an increase the
  // protocol's merge/split operations can never produce.
  ASSERT_TRUE(pool[4].aux.has_value());
  const double mass = linalg::norm1(*pool[4].aux);
  *pool[4].aux = linalg::unit_vector(sys.nodes.size(), 0) * mass;
  const std::string message =
      failure_message([&] { monitor.observe(view(pool)); });
  ASSERT_FALSE(message.empty()) << "angle increase went undetected";
  EXPECT_NE(message.find("lemma 2 violated"), std::string::npos) << message;
  EXPECT_NE(message.find("increased"), std::string::npos)
      << "message should name the increase: " << message;
}

TEST(Lemma2Audit, RejectsPoolWithoutAuxTracking) {
  const System sys;
  audit::ReferenceAngleMonitor monitor(sys.nodes.size());
  auto pool = sys.snapshot();
  pool[0].aux.reset();
  const std::string message =
      failure_message([&] { monitor.observe(view(pool)); });
  ASSERT_FALSE(message.empty());
  EXPECT_NE(message.find("lemma 2"), std::string::npos) << message;
}

}  // namespace
}  // namespace ddc
